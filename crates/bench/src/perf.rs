//! The `repro perf` measurement: detector-only event-loop throughput,
//! static-analysis cost, and peak shadow space — the numbers committed to
//! `BENCH.json` as the tracked performance baseline.
//!
//! Unlike [`crate::measure`], which times interpreter + detector together
//! (the paper's overhead experiment), `perf` records each benchmark to a
//! trace once, decodes it once, and then streams the pre-decoded events
//! through each detector configuration. That isolates the detector event
//! loop, so `events_per_sec` moves when the detector moves and not when
//! the interpreter does — exactly what a perf baseline must track.

use crate::{geomean, StaticObsStats, DETECTORS};
use bigfoot::{
    instrument, instrument_incremental, naive_instrument, redcard_instrument, InstrumentOptions,
    Instrumented, CACHE_FILE,
};
use bigfoot_bfj::{
    compile, mutate, site_count, trace::TraceWriter, CompiledVm, Event, EventSink, Interp,
    MutationKind, NullSink, Program, SchedPolicy,
};
use bigfoot_detectors::{
    detect_pipelined, djit_sharded, replay_compressed_report, replay_sharded, replay_trace,
    ArrayEngine, CheckSource, Detector, DjitDetector, PipelineConfig, ProxyTable, ReplayConfig,
    Stats, TraceReader,
};
use bigfoot_obs::json::Json;
use std::time::Instant;

/// Each detection run is repeated until it has consumed at least this
/// much wall time, so nanosecond-scale timer noise cannot dominate the
/// per-event quotient on small traces.
const MIN_SAMPLE_NS: u64 = 20_000_000;

/// One detector configuration's throughput on one benchmark.
#[derive(Debug, Clone)]
pub struct DetectorPerf {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Events in the recorded trace for this configuration's program.
    pub events: u64,
    /// Median events/second over the measurement reps.
    pub events_per_sec: f64,
    /// Peak shadow space (space units) observed during detection.
    pub shadow_space_peak: u64,
}

/// All `perf` measurements for one benchmark.
#[derive(Debug)]
pub struct PerfBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Static-analysis wall time and entailment share (obs span deltas).
    pub static_obs: StaticObsStats,
    /// Entailment-cache hits during the analysis (0 when uncached).
    pub entail_cache_hits: u64,
    /// Entailment-cache misses during the analysis.
    pub entail_cache_misses: u64,
    /// Per-detector throughput, in [`DETECTORS`] order.
    pub detectors: Vec<DetectorPerf>,
}

impl PerfBench {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &DetectorPerf {
        self.detectors
            .iter()
            .find(|r| r.name == name)
            .expect("detector")
    }
}

/// Builds the detector for one configuration short name, given the proxy
/// tables from the RedCard and BigFoot instrumentations.
fn config_detector(d: &str, rc_proxies: &ProxyTable, bf_proxies: &ProxyTable) -> Detector {
    match d {
        "FT" => Detector::new(
            "FastTrack",
            CheckSource::CheckEvents,
            ArrayEngine::Fine,
            ProxyTable::identity(),
        ),
        "RC" => Detector::redcard(rc_proxies.clone()),
        "SS" => Detector::new(
            "SlimState",
            CheckSource::CheckEvents,
            ArrayEngine::Footprint,
            ProxyTable::identity(),
        ),
        "SC" => Detector::slimcard(rc_proxies.clone()),
        _ => Detector::bigfoot(bf_proxies.clone()),
    }
}

fn record(program: &Program) -> (u64, Vec<Event>) {
    let mut writer = TraceWriter::new();
    Interp::new(program, SchedPolicy::default())
        .run(&mut writer)
        .expect("run");
    let events = writer.events();
    let bytes = writer.into_bytes();
    let decoded: Vec<Event> = TraceReader::new(&bytes)
        .expect("trace header")
        .map(|ev| ev.expect("trace event"))
        .collect();
    (events, decoded)
}

fn drive(events: &[Event], mut det: Detector) -> Stats {
    for ev in events {
        det.event(ev);
    }
    det.finish()
}

/// Median events/sec over `reps` samples, where each sample loops whole
/// detection runs until [`MIN_SAMPLE_NS`] has elapsed.
fn throughput<F: Fn() -> Detector>(events: &[Event], reps: usize, make: F) -> (f64, Stats) {
    // Calibration run: how many whole detections fit one sample?
    let t0 = Instant::now();
    let stats = drive(events, make());
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (MIN_SAMPLE_NS / once).clamp(1, 10_000) as usize;

    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(drive(events, make()));
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-12);
        rates.push(events.len() as f64 * iters as f64 / dt);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (rates[rates.len() / 2], stats)
}

/// Runs the full `perf` measurement for one benchmark.
pub fn measure_perf(name: &'static str, program: &Program, reps: usize) -> PerfBench {
    let snap0 = bigfoot_obs::snapshot();
    let inst: Instrumented = instrument(program);
    let snap1 = bigfoot_obs::snapshot();
    let static_obs = StaticObsStats {
        analysis_ns: snap1.timer_total("static.instrument")
            - snap0.timer_total("static.instrument"),
        entail_ns: snap1.timer_total("entail.query") - snap0.timer_total("entail.query"),
        entail_queries: snap1.counter_total("entail.query.") - snap0.counter_total("entail.query."),
    };
    let entail_cache_hits = snap1.counter("entail.cache.hit") - snap0.counter("entail.cache.hit");
    let entail_cache_misses =
        snap1.counter("entail.cache.miss") - snap0.counter("entail.cache.miss");

    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let naive = naive_instrument(program);
    let (naive_events, naive_trace) = record(&naive);
    let (rc_events, rc_trace) = record(&rc_prog);
    let (bf_events, bf_trace) = record(&inst.program);

    // Metric collection off while timing: the baseline tracks the bare
    // detector loop (obs overhead is bounded separately by its own bench).
    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let mut detectors = Vec::new();
    for d in DETECTORS {
        let (events, trace): (u64, &[Event]) = match d {
            "FT" | "SS" => (naive_events, &naive_trace),
            "RC" | "SC" => (rc_events, &rc_trace),
            _ => (bf_events, &bf_trace),
        };
        let (rate, stats) = throughput(trace, reps, || {
            config_detector(d, &rc_proxies, &inst.proxies)
        });
        detectors.push(DetectorPerf {
            name: d,
            events,
            events_per_sec: rate,
            shadow_space_peak: stats.shadow_space_peak,
        });
    }
    bigfoot_obs::set_enabled(obs_was_on);

    PerfBench {
        name,
        static_obs,
        entail_cache_hits,
        entail_cache_misses,
        detectors,
    }
}

/// Serial vs pipelined *end-to-end* throughput (interpreter + detector)
/// for one detector configuration on one benchmark.
///
/// Unlike [`DetectorPerf`], both numbers here include interpretation:
/// the pipeline's gain comes from overlapping the interpreter with the
/// detector across the batched ring, which a detector-only loop cannot
/// show.
#[derive(Debug, Clone)]
pub struct PipelineDetectorPerf {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Events produced by one run of this configuration's program.
    pub events: u64,
    /// Median events/second with interpreter and detector on one thread.
    pub serial_events_per_sec: f64,
    /// Median events/second with the detector on its own thread, fed
    /// through the default batched ring.
    pub pipelined_events_per_sec: f64,
}

impl PipelineDetectorPerf {
    /// Pipelined / serial throughput ratio (> 1 means overlap pays).
    pub fn speedup(&self) -> f64 {
        if self.serial_events_per_sec > 0.0 {
            self.pipelined_events_per_sec / self.serial_events_per_sec
        } else {
            1.0
        }
    }
}

/// All pipelined-mode measurements for one benchmark.
#[derive(Debug)]
pub struct PipelineBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-detector serial-vs-pipelined throughput, in [`DETECTORS`]
    /// order.
    pub detectors: Vec<PipelineDetectorPerf>,
}

impl PipelineBench {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &PipelineDetectorPerf {
        self.detectors
            .iter()
            .find(|r| r.name == name)
            .expect("detector")
    }
}

/// Median end-to-end events/sec over `reps` samples of `run`, where each
/// sample loops whole runs until [`MIN_SAMPLE_NS`] has elapsed.
fn end_to_end_rate(events: u64, reps: usize, run: impl Fn()) -> f64 {
    let t0 = Instant::now();
    run();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (MIN_SAMPLE_NS / once).clamp(1, 10_000) as usize;
    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            run();
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-12);
        rates.push(events as f64 * iters as f64 / dt);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates[rates.len() / 2]
}

/// Measures serial vs pipelined end-to-end throughput (`repro perf
/// --pipeline`). Every run re-executes the interpreter, so — unlike
/// [`measure_perf`] — these numbers move with the interpreter too; they
/// are reported as an *additive* `pipeline` section, never fed to the
/// [`check_against_baseline`] drift gate.
pub fn measure_pipeline(name: &'static str, program: &Program, reps: usize) -> PipelineBench {
    struct CountSink(u64);
    impl EventSink for CountSink {
        fn event(&mut self, _: &Event) {
            self.0 += 1;
        }
    }
    let count = |p: &Program| {
        let mut c = CountSink(0);
        Interp::new(p, SchedPolicy::default())
            .run(&mut c)
            .expect("run");
        c.0
    };

    let inst: Instrumented = instrument(program);
    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let naive = naive_instrument(program);
    let naive_events = count(&naive);
    let rc_events = count(&rc_prog);
    let bf_events = count(&inst.program);

    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let pipeline = PipelineConfig::default();
    let mut detectors = Vec::new();
    for d in DETECTORS {
        let (events, prog): (u64, &Program) = match d {
            "FT" | "SS" => (naive_events, &naive),
            "RC" | "SC" => (rc_events, &rc_prog),
            _ => (bf_events, &inst.program),
        };
        let serial = end_to_end_rate(events, reps, || {
            let mut det = config_detector(d, &rc_proxies, &inst.proxies);
            Interp::new(prog, SchedPolicy::default())
                .run(&mut det)
                .expect("run");
            std::hint::black_box(det.finish());
        });
        let pipelined = end_to_end_rate(events, reps, || {
            let (_, stats) = detect_pipelined(
                &pipeline,
                |sink| {
                    Interp::new(prog, SchedPolicy::default())
                        .run(sink)
                        .expect("run")
                },
                config_detector(d, &rc_proxies, &inst.proxies),
            );
            std::hint::black_box(stats);
        });
        detectors.push(PipelineDetectorPerf {
            name: d,
            events,
            serial_events_per_sec: serial,
            pipelined_events_per_sec: pipelined,
        });
    }
    bigfoot_obs::set_enabled(obs_was_on);

    PipelineBench { name, detectors }
}

/// Interpreted vs compiled execution throughput for one benchmark
/// (`repro perf --compiled`).
///
/// The uninstrumented pair is the headline number for the compilation
/// tier: the same program, the same schedule, a [`NullSink`], so the
/// only difference is tree-walking interpretation vs flat bytecode.
/// The instrumented pair runs the BigFoot-placed program end-to-end into
/// the BigFoot detector, showing how much of the win survives once
/// detection work shares the loop.
#[derive(Debug, Clone)]
pub struct CompiledBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Scheduler steps one uninstrumented run executes.
    pub steps: u64,
    /// Median steps/second, tree-walking interpreter, uninstrumented.
    pub interp_steps_per_sec: f64,
    /// Median steps/second, compiled bytecode VM, uninstrumented.
    pub compiled_steps_per_sec: f64,
    /// Events one BigFoot-instrumented run produces.
    pub events: u64,
    /// Median events/second, interpreter + BigFoot detector.
    pub interp_events_per_sec: f64,
    /// Median events/second, compiled VM + BigFoot detector.
    pub compiled_events_per_sec: f64,
}

impl CompiledBench {
    /// Compiled / interpreted throughput on the uninstrumented program.
    pub fn uninstrumented_speedup(&self) -> f64 {
        if self.interp_steps_per_sec > 0.0 {
            self.compiled_steps_per_sec / self.interp_steps_per_sec
        } else {
            1.0
        }
    }

    /// Compiled / interpreted end-to-end throughput under the BigFoot
    /// detector.
    pub fn instrumented_speedup(&self) -> f64 {
        if self.interp_events_per_sec > 0.0 {
            self.compiled_events_per_sec / self.interp_events_per_sec
        } else {
            1.0
        }
    }
}

/// Measures interpreted vs compiled throughput (`repro perf
/// --compiled`). Lowering happens once, outside the timed region — the
/// baseline tracks execution speed, and `vm.compile` has its own span.
/// The numbers land in an *additive* `compiled` section that the
/// [`check_against_baseline`] throughput gate never reads (though its
/// section-presence check still demands the section exist in both
/// reports).
pub fn measure_compiled(name: &'static str, program: &Program, reps: usize) -> CompiledBench {
    let steps = Interp::new(program, SchedPolicy::default())
        .run(&mut NullSink)
        .expect("run")
        .steps;
    let inst: Instrumented = instrument(program);
    struct CountSink(u64);
    impl EventSink for CountSink {
        fn event(&mut self, _: &Event) {
            self.0 += 1;
        }
    }
    let mut counter = CountSink(0);
    Interp::new(&inst.program, SchedPolicy::default())
        .run(&mut counter)
        .expect("run");
    let events = counter.0;

    let lowered = compile(program);
    let lowered_bf = compile(&inst.program);

    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let interp_steps_per_sec = end_to_end_rate(steps, reps, || {
        Interp::new(program, SchedPolicy::default())
            .run(&mut NullSink)
            .expect("run");
    });
    let compiled_steps_per_sec = end_to_end_rate(steps, reps, || {
        CompiledVm::new(&lowered, SchedPolicy::default())
            .run(&mut NullSink)
            .expect("run");
    });
    let interp_events_per_sec = end_to_end_rate(events, reps, || {
        let mut det = Detector::bigfoot(inst.proxies.clone());
        Interp::new(&inst.program, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        std::hint::black_box(det.finish());
    });
    let compiled_events_per_sec = end_to_end_rate(events, reps, || {
        let mut det = Detector::bigfoot(inst.proxies.clone());
        CompiledVm::new(&lowered_bf, SchedPolicy::default())
            .run(&mut det)
            .expect("run");
        std::hint::black_box(det.finish());
    });
    bigfoot_obs::set_enabled(obs_was_on);

    CompiledBench {
        name,
        steps,
        interp_steps_per_sec,
        compiled_steps_per_sec,
        events,
        interp_events_per_sec,
        compiled_events_per_sec,
    }
}

/// Trace-size and replay-throughput numbers for one replay
/// configuration on one benchmark (`repro perf --compressed`).
///
/// Both rates time the whole offline path — decode (or grammar walk),
/// vector-clock annotation, detection, merge — over the same recorded
/// schedule, so `speedup` isolates what the memoizing compressed-replay
/// engine buys (or costs: rules carrying sync, or the fine array
/// engine, fall back to expansion and pay the walk for nothing).
#[derive(Debug, Clone)]
pub struct CompressedDetectorPerf {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Events in this configuration's recorded trace.
    pub events: u64,
    /// Raw `BFTR` trace size in bytes.
    pub raw_bytes: u64,
    /// Grammar-compressed `BFTC` container size in bytes.
    pub compressed_bytes: u64,
    /// Median events/second replaying the raw trace.
    pub raw_events_per_sec: f64,
    /// Median events/second detecting directly on the compressed form.
    pub compressed_events_per_sec: f64,
    /// Memoized rule applications in one compressed replay.
    pub memo_runs: u64,
    /// Memoization probes that fell back to expansion.
    pub memo_fallbacks: u64,
    /// Events whose annotation was skipped by memoization.
    pub skipped_events: u64,
    /// Whether raw and compressed replay produced byte-identical stats.
    pub matches: bool,
}

impl CompressedDetectorPerf {
    /// Raw / compressed size ratio (> 1 means compression pays).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes > 0 {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        } else {
            1.0
        }
    }

    /// Compressed / raw replay throughput ratio (> 1 means the memoizing
    /// engine beats raw replay).
    pub fn speedup(&self) -> f64 {
        if self.raw_events_per_sec > 0.0 {
            self.compressed_events_per_sec / self.raw_events_per_sec
        } else {
            1.0
        }
    }
}

/// All compressed-trace measurements for one benchmark.
#[derive(Debug)]
pub struct CompressedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-configuration numbers, in [`DETECTORS`] order.
    pub detectors: Vec<CompressedDetectorPerf>,
}

impl CompressedBench {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &CompressedDetectorPerf {
        self.detectors
            .iter()
            .find(|r| r.name == name)
            .expect("detector")
    }
}

/// Measures trace compression and compressed-replay throughput
/// (`repro perf --compressed`). Each configuration's program is recorded
/// once to a raw `BFTR` trace, compressed once, and then both forms are
/// replayed to verdicts — `workers` fixed at 1 so the serial annotation
/// stage (where memoization acts) dominates. The numbers land in an
/// *additive* `compressed` section that the [`check_against_baseline`]
/// throughput gate never reads.
pub fn measure_compressed(name: &'static str, program: &Program, reps: usize) -> CompressedBench {
    let record_bytes = |p: &Program| -> (u64, Vec<u8>) {
        let mut writer = TraceWriter::new();
        Interp::new(p, SchedPolicy::default())
            .run(&mut writer)
            .expect("run");
        (writer.events(), writer.into_bytes())
    };
    let inst: Instrumented = instrument(program);
    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let (raw_events, raw_trace) = record_bytes(program);
    let (rc_events, rc_trace) = record_bytes(&rc_prog);
    let (bf_events, bf_trace) = record_bytes(&inst.program);

    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let mut detectors = Vec::new();
    for d in DETECTORS {
        let (events, trace): (u64, &[u8]) = match d {
            // The replay engine's FastTrack/SlimState configurations
            // check raw accesses, so the uninstrumented trace is theirs.
            "FT" | "SS" => (raw_events, &raw_trace),
            "RC" | "SC" => (rc_events, &rc_trace),
            _ => (bf_events, &bf_trace),
        };
        let config = match d {
            "FT" => ReplayConfig::fasttrack(1),
            "SS" => ReplayConfig::slimstate(1),
            "RC" => ReplayConfig::redcard(rc_proxies.clone(), 1),
            "SC" => ReplayConfig::slimcard(rc_proxies.clone(), 1),
            _ => ReplayConfig::bigfoot(inst.proxies.clone(), 1),
        };
        let packed = bigfoot_bfj::compress(trace).expect("compress");
        let raw_stats = replay_trace(trace, &config).expect("raw replay");
        let (comp_stats, memo) =
            replay_compressed_report(&packed, &config).expect("compressed replay");
        let matches = raw_stats.to_json().to_string_compact()
            == comp_stats.to_json().to_string_compact()
            && raw_stats.races == comp_stats.races;
        let raw_rate = end_to_end_rate(events, reps, || {
            std::hint::black_box(replay_trace(trace, &config).expect("raw replay"));
        });
        let comp_rate = end_to_end_rate(events, reps, || {
            std::hint::black_box(
                bigfoot_detectors::replay_compressed(&packed, &config).expect("compressed replay"),
            );
        });
        detectors.push(CompressedDetectorPerf {
            name: d,
            events,
            raw_bytes: trace.len() as u64,
            compressed_bytes: packed.len() as u64,
            raw_events_per_sec: raw_rate,
            compressed_events_per_sec: comp_rate,
            memo_runs: memo.memo_runs,
            memo_fallbacks: memo.memo_fallbacks,
            skipped_events: memo.skipped_events,
            matches,
        });
    }
    bigfoot_obs::set_enabled(obs_was_on);

    CompressedBench { name, detectors }
}

/// Detector configurations the sharded measurement covers: the light
/// consumer (FastTrack, where the interpreter is the wall and fan-out
/// can only add overhead) and the heavy consumer (DJIT+, whose
/// per-access clock scans are the workload fan-out exists for).
pub const SHARDED_DETECTORS: [&str; 2] = ["FT", "DJIT"];

/// Serial vs sharded multi-worker end-to-end throughput for one
/// detector configuration on one benchmark.
#[derive(Debug, Clone)]
pub struct ShardedDetectorPerf {
    /// Short name (see [`SHARDED_DETECTORS`]).
    pub name: &'static str,
    /// Events produced by one run of this configuration's program.
    pub events: u64,
    /// Median events/second with interpreter and detector on one thread.
    pub serial_events_per_sec: f64,
    /// Median events/second with the event ring, router thread, and the
    /// configured number of sharded detection workers.
    pub sharded_events_per_sec: f64,
}

impl ShardedDetectorPerf {
    /// Sharded / serial throughput ratio (> 1 means fan-out pays).
    pub fn speedup(&self) -> f64 {
        if self.serial_events_per_sec > 0.0 {
            self.sharded_events_per_sec / self.serial_events_per_sec
        } else {
            1.0
        }
    }
}

/// All sharded-mode measurements for one benchmark.
#[derive(Debug)]
pub struct ShardedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Detection workers the sharded runs used.
    pub workers: usize,
    /// Per-detector serial-vs-sharded throughput, in
    /// [`SHARDED_DETECTORS`] order.
    pub detectors: Vec<ShardedDetectorPerf>,
}

impl ShardedBench {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &ShardedDetectorPerf {
        self.detectors
            .iter()
            .find(|r| r.name == name)
            .expect("detector")
    }
}

/// Measures serial vs sharded multi-worker end-to-end throughput
/// (`repro perf --pipeline --detect-workers N`). Like
/// [`measure_pipeline`], every run re-executes the interpreter; the
/// numbers land in an *additive* `pipeline_sharded` section that the
/// [`check_against_baseline`] drift gate never reads.
pub fn measure_sharded(
    name: &'static str,
    program: &Program,
    reps: usize,
    workers: usize,
) -> ShardedBench {
    struct CountSink(u64);
    impl EventSink for CountSink {
        fn event(&mut self, _: &Event) {
            self.0 += 1;
        }
    }
    let count = |p: &Program| {
        let mut c = CountSink(0);
        Interp::new(p, SchedPolicy::default())
            .run(&mut c)
            .expect("run");
        c.0
    };
    let naive = naive_instrument(program);
    let naive_events = count(&naive);
    let raw_events = count(program);

    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);
    let pipeline = PipelineConfig::default();
    let mut detectors = Vec::new();
    for d in SHARDED_DETECTORS {
        let (events, perf) = match d {
            "FT" => {
                let serial = end_to_end_rate(naive_events, reps, || {
                    let mut det = Detector::fasttrack();
                    Interp::new(&naive, SchedPolicy::default())
                        .run(&mut det)
                        .expect("run");
                    std::hint::black_box(det.finish());
                });
                let sharded = end_to_end_rate(naive_events, reps, || {
                    let (_, stats) =
                        replay_sharded(&pipeline, &ReplayConfig::fasttrack(workers), |sink| {
                            Interp::new(&naive, SchedPolicy::default())
                                .run(sink)
                                .expect("run")
                        });
                    std::hint::black_box(stats);
                });
                (naive_events, (serial, sharded))
            }
            _ => {
                let serial = end_to_end_rate(raw_events, reps, || {
                    let mut det = DjitDetector::new();
                    Interp::new(program, SchedPolicy::default())
                        .run(&mut det)
                        .expect("run");
                    std::hint::black_box(det.finish());
                });
                let sharded = end_to_end_rate(raw_events, reps, || {
                    let (_, stats) = djit_sharded(&pipeline, workers, |sink| {
                        Interp::new(program, SchedPolicy::default())
                            .run(sink)
                            .expect("run")
                    });
                    std::hint::black_box(stats);
                });
                (raw_events, (serial, sharded))
            }
        };
        detectors.push(ShardedDetectorPerf {
            name: d,
            events,
            serial_events_per_sec: perf.0,
            sharded_events_per_sec: perf.1,
        });
    }
    bigfoot_obs::set_enabled(obs_was_on);

    ShardedBench {
        name,
        workers,
        detectors,
    }
}

/// Cold vs warm incremental static-analysis cost for one benchmark —
/// the data behind the always-on `static_incremental` section of the
/// `repro perf` report.
#[derive(Debug, Clone)]
pub struct StaticIncrementalBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Cacheable analysis sites (class methods plus `main`).
    pub sites: usize,
    /// Median cold analysis wall time (empty cache).
    pub cold_ns: u64,
    /// Median warm analysis wall time with an up-to-date cache (every
    /// site replays).
    pub warm_ns: u64,
    /// Median warm analysis wall time after a one-method arithmetic
    /// tweak (one site re-analyzes, the rest replay).
    pub edit_warm_ns: u64,
    /// Cache hits during the post-edit warm run.
    pub edit_hits: usize,
    /// Cache misses during the post-edit warm run.
    pub edit_misses: usize,
}

impl StaticIncrementalBench {
    /// Warm / cold wall-time ratio (< 1 means the cache pays).
    pub fn warm_over_cold(&self) -> f64 {
        if self.cold_ns > 0 {
            self.warm_ns as f64 / self.cold_ns as f64
        } else {
            1.0
        }
    }

    /// Fraction of sites skipped on the post-edit warm run.
    pub fn edit_skip_rate(&self) -> f64 {
        let total = self.edit_hits + self.edit_misses;
        if total > 0 {
            self.edit_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Median of raw nanosecond samples.
fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measures the incremental static pipeline on one benchmark: cold
/// analysis into an empty cache, warm re-analysis of the unchanged
/// program, and warm re-analysis after a single-method non-fact edit
/// (the evolving-program case the cache exists for). Uses a throwaway
/// cache directory under the system temp dir.
pub fn measure_static_incremental(
    name: &'static str,
    program: &Program,
    reps: usize,
) -> StaticIncrementalBench {
    let opts = InstrumentOptions::default();
    let dir = std::env::temp_dir().join(format!(
        "bigfoot-perf-inc-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));

    // Timed runs measure the bare pipeline, not metric plumbing.
    let obs_was_on = bigfoot_obs::enabled();
    bigfoot_obs::set_enabled(false);

    let reps = reps.max(1);
    let mut cold = Vec::with_capacity(reps);
    for _ in 0..reps {
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        std::hint::black_box(instrument_incremental(program, opts, &dir));
        cold.push(t0.elapsed().as_nanos() as u64);
    }

    // The last cold run left a fresh cache behind; snapshot its bytes so
    // the post-edit runs below can each start from the same warm state.
    let seeded = std::fs::read(dir.join(CACHE_FILE)).expect("cache written");
    let mut warm = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(instrument_incremental(program, opts, &dir));
        warm.push(t0.elapsed().as_nanos() as u64);
    }

    let mut edited = program.clone();
    mutate(&mut edited, 0, MutationKind::ArithTweak, 5).expect("benchmark has a method");
    let mut edit_warm = Vec::with_capacity(reps);
    let (mut edit_hits, mut edit_misses) = (0, 0);
    for _ in 0..reps {
        std::fs::write(dir.join(CACHE_FILE), &seeded).expect("replant cache");
        let t0 = Instant::now();
        let (_, stats) = instrument_incremental(&edited, opts, &dir);
        edit_warm.push(t0.elapsed().as_nanos() as u64);
        edit_hits = stats.hits;
        edit_misses = stats.misses;
    }
    let _ = std::fs::remove_dir_all(&dir);
    bigfoot_obs::set_enabled(obs_was_on);

    StaticIncrementalBench {
        name,
        sites: site_count(program),
        cold_ns: median_ns(cold),
        warm_ns: median_ns(warm),
        edit_warm_ns: median_ns(edit_warm),
        edit_hits,
        edit_misses,
    }
}

/// The `repro perf --json` report (the `BENCH.json` schema). The
/// `pipeline`, `pipeline_sharded`, `compiled`, and `compressed` sections
/// are additive: present only when `--pipeline` (with
/// `--detect-workers`), `--compiled`, and `--compressed` ran.
/// The `static_incremental` section is always present. Of all these,
/// [`check_against_baseline`] never reads the numbers, but it does
/// require the baseline and the fresh report to carry the same set of
/// sections.
#[allow(clippy::too_many_arguments)]
pub fn perf_json(
    results: &[PerfBench],
    incremental: &[StaticIncrementalBench],
    pipeline: Option<&[PipelineBench]>,
    sharded: Option<&[ShardedBench]>,
    compiled: Option<&[CompiledBench]>,
    compressed: Option<&[CompressedBench]>,
    scale: &str,
    reps: usize,
) -> Json {
    let mut env = crate::report::envelope("perf", scale, reps);
    let mut arr = Json::array();
    for r in results {
        let mut b = Json::object();
        b.set("name", r.name);
        let mut stat = Json::object();
        stat.set("analysis_ms", r.static_obs.analysis_ns as f64 / 1e6);
        stat.set("entail_ms", r.static_obs.entail_ns as f64 / 1e6);
        stat.set("entail_share", r.static_obs.entail_share());
        stat.set("entail_queries", r.static_obs.entail_queries);
        stat.set("entail_cache_hits", r.entail_cache_hits);
        stat.set("entail_cache_misses", r.entail_cache_misses);
        b.set("static", stat);
        let mut dets = Json::object();
        for d in &r.detectors {
            let mut o = Json::object();
            o.set("events", d.events);
            o.set("events_per_sec", d.events_per_sec);
            o.set("shadow_space_peak", d.shadow_space_peak);
            dets.set(d.name, o);
        }
        b.set("detectors", dets);
        arr.push(b);
    }
    env.set("benchmarks", arr);

    let mut summary = Json::object();
    let mut rates = Json::object();
    for d in DETECTORS {
        rates.set(d, geomean(results.iter().map(|r| r.run(d).events_per_sec)));
    }
    summary.set("events_per_sec_geomean", rates);
    let analysis_ns: u64 = results.iter().map(|r| r.static_obs.analysis_ns).sum();
    let entail_ns: u64 = results.iter().map(|r| r.static_obs.entail_ns).sum();
    summary.set("static_analysis_ms", analysis_ns as f64 / 1e6);
    summary.set(
        "entail_share",
        if analysis_ns == 0 {
            0.0
        } else {
            entail_ns as f64 / analysis_ns as f64
        },
    );
    let mut space = Json::object();
    for d in DETECTORS {
        space.set(
            d,
            results
                .iter()
                .map(|r| r.run(d).shadow_space_peak)
                .sum::<u64>(),
        );
    }
    summary.set("shadow_space_peak_total", space);
    env.set("summary", summary);

    {
        let mut inc = Json::object();
        let mut arr = Json::array();
        for r in incremental {
            let mut b = Json::object();
            b.set("name", r.name);
            b.set("sites", r.sites as u64);
            b.set("cold_ms", r.cold_ns as f64 / 1e6);
            b.set("warm_ms", r.warm_ns as f64 / 1e6);
            b.set("warm_over_cold", r.warm_over_cold());
            b.set("edit_warm_ms", r.edit_warm_ns as f64 / 1e6);
            b.set("edit_hits", r.edit_hits as u64);
            b.set("edit_misses", r.edit_misses as u64);
            b.set("edit_skip_rate", r.edit_skip_rate());
            arr.push(b);
        }
        inc.set("benchmarks", arr);
        let mut isummary = Json::object();
        let cold_ns: u64 = incremental.iter().map(|r| r.cold_ns).sum();
        let warm_ns: u64 = incremental.iter().map(|r| r.warm_ns).sum();
        let edit_ns: u64 = incremental.iter().map(|r| r.edit_warm_ns).sum();
        isummary.set("cold_ms", cold_ns as f64 / 1e6);
        isummary.set("warm_ms", warm_ns as f64 / 1e6);
        isummary.set(
            "warm_over_cold",
            if cold_ns > 0 {
                warm_ns as f64 / cold_ns as f64
            } else {
                1.0
            },
        );
        isummary.set("edit_warm_ms", edit_ns as f64 / 1e6);
        let hits: usize = incremental.iter().map(|r| r.edit_hits).sum();
        let total: usize = incremental
            .iter()
            .map(|r| r.edit_hits + r.edit_misses)
            .sum();
        isummary.set(
            "edit_skip_rate",
            if total > 0 {
                hits as f64 / total as f64
            } else {
                0.0
            },
        );
        inc.set("summary", isummary);
        env.set("static_incremental", inc);
    }

    if let Some(pipeline) = pipeline {
        let mut p = Json::object();
        p.set(
            "batch_events",
            bigfoot_detectors::DEFAULT_BATCH_EVENTS as u64,
        );
        p.set("ring_slots", bigfoot_detectors::DEFAULT_RING_SLOTS as u64);
        let mut arr = Json::array();
        for r in pipeline {
            let mut b = Json::object();
            b.set("name", r.name);
            let mut dets = Json::object();
            for d in &r.detectors {
                let mut o = Json::object();
                o.set("events", d.events);
                o.set("serial_events_per_sec", d.serial_events_per_sec);
                o.set("pipelined_events_per_sec", d.pipelined_events_per_sec);
                o.set("speedup", d.speedup());
                dets.set(d.name, o);
            }
            b.set("detectors", dets);
            arr.push(b);
        }
        p.set("benchmarks", arr);
        let mut psummary = Json::object();
        let mut serial_rates = Json::object();
        let mut piped_rates = Json::object();
        let mut speedups = Json::object();
        for d in DETECTORS {
            serial_rates.set(
                d,
                geomean(pipeline.iter().map(|r| r.run(d).serial_events_per_sec)),
            );
            piped_rates.set(
                d,
                geomean(pipeline.iter().map(|r| r.run(d).pipelined_events_per_sec)),
            );
            speedups.set(d, geomean(pipeline.iter().map(|r| r.run(d).speedup())));
        }
        psummary.set("serial_events_per_sec_geomean", serial_rates);
        psummary.set("pipelined_events_per_sec_geomean", piped_rates);
        psummary.set("speedup_geomean", speedups);
        p.set("summary", psummary);
        env.set("pipeline", p);
    }

    if let Some(sharded) = sharded {
        let mut p = Json::object();
        p.set(
            "batch_events",
            bigfoot_detectors::DEFAULT_BATCH_EVENTS as u64,
        );
        p.set("ring_slots", bigfoot_detectors::DEFAULT_RING_SLOTS as u64);
        if let Some(r) = sharded.first() {
            p.set("detect_workers", r.workers as u64);
        }
        let mut arr = Json::array();
        for r in sharded {
            let mut b = Json::object();
            b.set("name", r.name);
            let mut dets = Json::object();
            for d in &r.detectors {
                let mut o = Json::object();
                o.set("events", d.events);
                o.set("serial_events_per_sec", d.serial_events_per_sec);
                o.set("sharded_events_per_sec", d.sharded_events_per_sec);
                o.set("speedup", d.speedup());
                dets.set(d.name, o);
            }
            b.set("detectors", dets);
            arr.push(b);
        }
        p.set("benchmarks", arr);
        let mut psummary = Json::object();
        let mut serial_rates = Json::object();
        let mut sharded_rates = Json::object();
        let mut speedups = Json::object();
        for d in SHARDED_DETECTORS {
            serial_rates.set(
                d,
                geomean(sharded.iter().map(|r| r.run(d).serial_events_per_sec)),
            );
            sharded_rates.set(
                d,
                geomean(sharded.iter().map(|r| r.run(d).sharded_events_per_sec)),
            );
            speedups.set(d, geomean(sharded.iter().map(|r| r.run(d).speedup())));
        }
        psummary.set("serial_events_per_sec_geomean", serial_rates);
        psummary.set("sharded_events_per_sec_geomean", sharded_rates);
        psummary.set("speedup_geomean", speedups);
        p.set("summary", psummary);
        env.set("pipeline_sharded", p);
    }

    if let Some(compiled) = compiled {
        let mut c = Json::object();
        let mut arr = Json::array();
        for r in compiled {
            let mut b = Json::object();
            b.set("name", r.name);
            b.set("steps", r.steps);
            b.set("interp_steps_per_sec", r.interp_steps_per_sec);
            b.set("compiled_steps_per_sec", r.compiled_steps_per_sec);
            b.set("uninstrumented_speedup", r.uninstrumented_speedup());
            b.set("events", r.events);
            b.set("interp_events_per_sec", r.interp_events_per_sec);
            b.set("compiled_events_per_sec", r.compiled_events_per_sec);
            b.set("instrumented_speedup", r.instrumented_speedup());
            arr.push(b);
        }
        c.set("benchmarks", arr);
        let mut csummary = Json::object();
        csummary.set(
            "interp_steps_per_sec_geomean",
            geomean(compiled.iter().map(|r| r.interp_steps_per_sec)),
        );
        csummary.set(
            "compiled_steps_per_sec_geomean",
            geomean(compiled.iter().map(|r| r.compiled_steps_per_sec)),
        );
        csummary.set(
            "uninstrumented_speedup_geomean",
            geomean(compiled.iter().map(|r| r.uninstrumented_speedup())),
        );
        csummary.set(
            "instrumented_speedup_geomean",
            geomean(compiled.iter().map(|r| r.instrumented_speedup())),
        );
        c.set("summary", csummary);
        env.set("compiled", c);
    }

    if let Some(compressed) = compressed {
        let mut c = Json::object();
        let mut arr = Json::array();
        for r in compressed {
            let mut b = Json::object();
            b.set("name", r.name);
            let mut dets = Json::object();
            for d in &r.detectors {
                let mut o = Json::object();
                o.set("events", d.events);
                o.set("raw_bytes", d.raw_bytes);
                o.set("compressed_bytes", d.compressed_bytes);
                o.set("ratio", d.ratio());
                o.set("raw_events_per_sec", d.raw_events_per_sec);
                o.set("compressed_events_per_sec", d.compressed_events_per_sec);
                o.set("speedup", d.speedup());
                o.set("memo_runs", d.memo_runs);
                o.set("memo_fallbacks", d.memo_fallbacks);
                o.set("skipped_events", d.skipped_events);
                o.set("matches", d.matches);
                dets.set(d.name, o);
            }
            b.set("detectors", dets);
            arr.push(b);
        }
        c.set("benchmarks", arr);
        let mut csummary = Json::object();
        let mut ratios = Json::object();
        let mut speedups = Json::object();
        for d in DETECTORS {
            ratios.set(d, geomean(compressed.iter().map(|r| r.run(d).ratio())));
            speedups.set(d, geomean(compressed.iter().map(|r| r.run(d).speedup())));
        }
        csummary.set("compression_ratio_geomean", ratios);
        csummary.set("speedup_geomean", speedups);
        csummary.set(
            "all_match",
            compressed
                .iter()
                .all(|r| r.detectors.iter().all(|d| d.matches)),
        );
        c.set("summary", csummary);
        env.set("compressed", c);
    }
    env
}

/// Compares a fresh `perf` report against a committed baseline: fails if
/// the two reports disagree on their top-level sections (in either
/// direction), or if any detector's `events_per_sec_geomean` dropped by
/// more than `tolerance` (a fraction, e.g. `0.25`). Returns
/// human-readable lines on success; `Err` lists the problems.
pub fn check_against_baseline(
    current: &Json,
    baseline: &Json,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    // Section drift first: a check run with different flags than the
    // baseline (or a stale baseline missing a newer section) silently
    // compares only what both sides happen to share — so demand the
    // exact same top-level key set before reading any numbers.
    fn keys(j: &Json) -> Vec<&str> {
        j.entries().iter().map(|(k, _)| k.as_str()).collect()
    }
    let missing: Vec<&str> = keys(baseline)
        .into_iter()
        .filter(|k| current.get(k).is_none())
        .collect();
    let extra: Vec<&str> = keys(current)
        .into_iter()
        .filter(|k| baseline.get(k).is_none())
        .collect();
    if !missing.is_empty() || !extra.is_empty() {
        let mut parts = Vec::new();
        if !missing.is_empty() {
            parts.push(format!(
                "baseline sections missing from this run: {}",
                missing.join(", ")
            ));
        }
        if !extra.is_empty() {
            parts.push(format!(
                "sections in this run but not the baseline: {}",
                extra.join(", ")
            ));
        }
        return Err(format!(
            "report sections diverge from the baseline — {} \
             (run the check with the same flags the baseline was generated \
             with, or refresh it; see docs/PERFORMANCE.md)",
            parts.join("; ")
        ));
    }
    let rate = |j: &Json, d: &str| -> Result<f64, String> {
        j.get("summary")
            .and_then(|s| s.get("events_per_sec_geomean"))
            .and_then(|r| r.get(d))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing summary.events_per_sec_geomean.{d}"))
    };
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for d in DETECTORS {
        let old = rate(baseline, d).map_err(|e| format!("baseline: {e}"))?;
        let new = rate(current, d).map_err(|e| format!("current: {e}"))?;
        let ratio = if old > 0.0 { new / old } else { 1.0 };
        let line = format!(
            "{d}: {:.3e} -> {:.3e} events/sec ({:+.1}%)",
            old,
            new,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            failures.push(line);
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(format!(
            "throughput regressed beyond the {:.0}% tolerance:\n  {}\n\
             (to refresh the baseline intentionally, see docs/PERFORMANCE.md)",
            tolerance * 100.0,
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::check_against_baseline;
    use bigfoot_obs::json::{parse, Json};

    /// A minimal report: the envelope keys plus a rate summary, with an
    /// optional extra section.
    fn report(rate: f64, extra_section: Option<&str>) -> Json {
        let mut j = parse(&format!(
            r#"{{"schema_version": 2, "tool": "repro", "command": "perf",
                 "benchmarks": [],
                 "summary": {{"events_per_sec_geomean":
                   {{"FT": {rate}, "RC": {rate}, "SS": {rate}, "SC": {rate}, "BF": {rate}}}}}}}"#
        ))
        .expect("report json");
        if let Some(name) = extra_section {
            j.set(name, Json::object());
        }
        j
    }

    #[test]
    fn matching_reports_pass() {
        let lines = check_against_baseline(&report(1e6, None), &report(1e6, None), 0.25)
            .expect("within tolerance");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn regressions_beyond_tolerance_fail() {
        let err = check_against_baseline(&report(0.5e6, None), &report(1e6, None), 0.25)
            .expect_err("50% drop must fail a 25% gate");
        assert!(err.contains("regressed"), "unexpected error: {err}");
    }

    #[test]
    fn a_section_missing_from_the_current_run_fails() {
        // Baseline was generated with --pipeline --compiled, the check
        // ran bare: the pipeline/compiled numbers silently vanish unless
        // the gate demands section parity.
        let err = check_against_baseline(&report(1e6, None), &report(1e6, Some("compiled")), 0.25)
            .expect_err("missing section must fail");
        assert!(
            err.contains("missing from this run") && err.contains("compiled"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn a_section_missing_from_the_baseline_fails_too() {
        // The other direction: a stale baseline that predates a newer
        // additive section must be refreshed, not silently accepted.
        let err = check_against_baseline(&report(1e6, Some("compiled")), &report(1e6, None), 0.25)
            .expect_err("extra section must fail");
        assert!(
            err.contains("not the baseline") && err.contains("compiled"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn section_drift_is_reported_in_both_directions_at_once() {
        let err = check_against_baseline(
            &report(1e6, Some("pipeline")),
            &report(1e6, Some("compiled")),
            0.25,
        )
        .expect_err("section mismatch must fail");
        assert!(err.contains("pipeline") && err.contains("compiled"));
    }
}
