//! Measurement harness shared by the `repro` binary and the criterion
//! benches: runs every detector configuration of the paper over a
//! benchmark program and collects timing, operation counts, and space.

use bigfoot::{
    instrument, instrument_with, naive_instrument, redcard_instrument, InstrumentOptions,
    Instrumented,
};
use bigfoot_bfj::{Interp, NullSink, Program, SchedPolicy};
use bigfoot_detectors::{ArrayEngine, CheckSource, Detector, ProxyTable, Stats};
use std::time::{Duration, Instant};

pub mod report;

/// The detector configurations of Fig. 2, in presentation order.
pub const DETECTORS: [&str; 5] = ["FT", "RC", "SS", "SC", "BF"];

/// One detector's measurements on one benchmark.
#[derive(Debug, Clone)]
pub struct DetectorRun {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Wall-clock time of the monitored run.
    pub time: Duration,
    /// Detector statistics.
    pub stats: Stats,
}

impl DetectorRun {
    /// Overhead versus the base time (CheckerTime − BaseTime), in
    /// multiples of the base time.
    pub fn overhead(&self, base: Duration) -> f64 {
        (self.time.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64().max(1e-9)
    }

    /// An architecture-independent cost model: one unit per shadow
    /// operation, a third per footprint insertion, a tenth per check
    /// dispatch, and three per synchronization operation (vector-clock
    /// joins). Used to cross-check the wall-clock numbers.
    pub fn model_cost(&self) -> f64 {
        self.stats.shadow_ops as f64
            + self.stats.footprint_ops as f64 / 3.0
            + self.stats.checks as f64 / 10.0
            + self.stats.sync_ops as f64 * 3.0
    }
}

/// Observability-derived static-analysis measurements: how much of the
/// StaticBF wall time went to the entailment engine (§6.1). Captured as a
/// snapshot delta around the `instrument` call in [`measure`]; all zero
/// when `bigfoot-obs` collection is disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticObsStats {
    /// Total `static.instrument` span time, ns.
    pub analysis_ns: u64,
    /// Total outermost `entail.query` time, ns.
    pub entail_ns: u64,
    /// Entailment queries issued (all `entail.query.*` counters).
    pub entail_queries: u64,
}

impl StaticObsStats {
    /// Fraction of analysis wall time spent in the entailment engine.
    pub fn entail_share(&self) -> f64 {
        if self.analysis_ns == 0 {
            0.0
        } else {
            self.entail_ns as f64 / self.analysis_ns as f64
        }
    }
}

/// All measurements for one benchmark.
#[derive(Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall-clock base (uninstrumented, no detector) time.
    pub base_time: Duration,
    /// Base heap cells (Table 2 denominator).
    pub heap_cells: u64,
    /// Static-analysis statistics for the BigFoot instrumentation.
    pub static_stats: bigfoot::AnalysisStats,
    /// Entailment-engine share of the analysis, from `bigfoot-obs` spans.
    pub static_obs: StaticObsStats,
    /// Per-detector runs, in [`DETECTORS`] order.
    pub runs: Vec<DetectorRun>,
}

impl BenchResult {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &DetectorRun {
        self.runs.iter().find(|r| r.name == name).expect("detector")
    }
}

/// Median-of-`reps` wall time for running `program` into `make_sink`'s
/// detector (or `None` for the base run). Returns the last run's stats.
fn timed<F: FnMut() -> Option<Detector>>(
    program: &Program,
    reps: usize,
    mut make_sink: F,
) -> (Duration, Option<Stats>) {
    let mut times = Vec::with_capacity(reps);
    let mut last_stats = None;
    for _ in 0..reps.max(1) {
        match make_sink() {
            None => {
                let t0 = Instant::now();
                Interp::new(program, SchedPolicy::default())
                    .run(&mut NullSink)
                    .expect("run");
                times.push(t0.elapsed());
            }
            Some(mut det) => {
                let t0 = Instant::now();
                Interp::new(program, SchedPolicy::default())
                    .run(&mut det)
                    .expect("run");
                times.push(t0.elapsed());
                last_stats = Some(det.finish());
            }
        }
    }
    times.sort();
    (times[times.len() / 2], last_stats)
}

/// Runs the full detector matrix over one benchmark program.
///
/// Instrumentation cost is charged faithfully: FastTrack and SlimState run
/// the *naively instrumented* program (one check statement per access, as
/// RoadRunner inserts one callback per access), RedCard/SlimCard run the
/// RedCard-instrumented program, and BigFoot runs the BigFoot-instrumented
/// program. Overheads are all relative to the uninstrumented base run.
pub fn measure(name: &'static str, program: &Program, reps: usize) -> BenchResult {
    let snap0 = bigfoot_obs::snapshot();
    let inst: Instrumented = instrument(program);
    let snap1 = bigfoot_obs::snapshot();
    let static_obs = StaticObsStats {
        analysis_ns: snap1.timer_total("static.instrument")
            - snap0.timer_total("static.instrument"),
        entail_ns: snap1.timer_total("entail.query") - snap0.timer_total("entail.query"),
        entail_queries: snap1.counter_total("entail.query.") - snap0.counter_total("entail.query."),
    };
    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let naive = naive_instrument(program);

    let (base_time, _) = timed(program, reps, || None);
    let heap_cells = {
        let mut i = Interp::new(program, SchedPolicy::default());
        i.run(&mut NullSink).expect("run");
        i.heap().cells()
    };

    let mut runs = Vec::new();
    let (t, s) = timed(&naive, reps, || {
        Some(Detector::new(
            "FastTrack",
            CheckSource::CheckEvents,
            ArrayEngine::Fine,
            ProxyTable::identity(),
        ))
    });
    runs.push(DetectorRun {
        name: "FT",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&rc_prog, reps, || {
        Some(Detector::redcard(rc_proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "RC",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&naive, reps, || {
        Some(Detector::new(
            "SlimState",
            CheckSource::CheckEvents,
            ArrayEngine::Footprint,
            ProxyTable::identity(),
        ))
    });
    runs.push(DetectorRun {
        name: "SS",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&rc_prog, reps, || {
        Some(Detector::slimcard(rc_proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "SC",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&inst.program, reps, || {
        Some(Detector::bigfoot(inst.proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "BF",
        time: t,
        stats: s.unwrap(),
    });

    BenchResult {
        name,
        base_time,
        heap_cells,
        static_stats: inst.stats,
        static_obs,
        runs,
    }
}

/// One ablation configuration of the static analysis.
pub const ABLATIONS: [(&str, InstrumentOptions); 5] = [
    (
        "full",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-anticipation",
        InstrumentOptions {
            anticipation: false,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-coalescing",
        InstrumentOptions {
            anticipation: true,
            coalescing: false,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-loop-motion",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: false,
            field_proxies: true,
        },
    ),
    (
        "-proxies",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: false,
        },
    ),
];

/// Runs the BigFoot detector under one ablation configuration and returns
/// (wall time, stats).
pub fn measure_ablation(program: &Program, options: InstrumentOptions, reps: usize) -> DetectorRun {
    let inst = instrument_with(program, options);
    let (t, s) = timed(&inst.program, reps, || {
        Some(Detector::bigfoot(inst.proxies.clone()))
    });
    DetectorRun {
        name: "BF",
        time: t,
        stats: s.expect("stats"),
    }
}

/// Geometric mean of positive values (zeroes clamped to a small epsilon,
/// as overheads of 0 would otherwise collapse the mean).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-3).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// A pure-detector measurement that replays the instrumented program once
/// and returns only the statistics (no timing) — cheap enough for tests.
pub fn stats_only(name: &'static str, program: &Program) -> BenchResult {
    measure(name, program, 1)
}
