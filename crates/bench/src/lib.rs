//! Measurement harness shared by the `repro` binary and the criterion
//! benches: runs every detector configuration of the paper over a
//! benchmark program and collects timing, operation counts, and space.

use bigfoot::{
    instrument, instrument_with, naive_instrument, redcard_instrument, InstrumentOptions,
    Instrumented,
};
use bigfoot_bfj::{trace::TraceWriter, EventSink, Interp, NullSink, Program, SchedPolicy};
use bigfoot_detectors::{
    replay_trace, ArrayEngine, CheckSource, Detector, ProxyTable, ReplayConfig, Stats, TraceReader,
};
use std::time::{Duration, Instant};

pub mod perf;
pub mod report;

/// The detector configurations of Fig. 2, in presentation order.
pub const DETECTORS: [&str; 5] = ["FT", "RC", "SS", "SC", "BF"];

/// One detector's measurements on one benchmark.
#[derive(Debug, Clone)]
pub struct DetectorRun {
    /// Short name (FT/RC/SS/SC/BF).
    pub name: &'static str,
    /// Wall-clock time of the monitored run.
    pub time: Duration,
    /// Detector statistics.
    pub stats: Stats,
}

impl DetectorRun {
    /// Overhead versus the base time (CheckerTime − BaseTime), in
    /// multiples of the base time.
    pub fn overhead(&self, base: Duration) -> f64 {
        (self.time.as_secs_f64() - base.as_secs_f64()).max(0.0) / base.as_secs_f64().max(1e-9)
    }

    /// An architecture-independent cost model: one unit per shadow
    /// operation, a third per footprint insertion, a tenth per check
    /// dispatch, and three per synchronization operation (vector-clock
    /// joins). Used to cross-check the wall-clock numbers.
    pub fn model_cost(&self) -> f64 {
        self.stats.shadow_ops as f64
            + self.stats.footprint_ops as f64 / 3.0
            + self.stats.checks as f64 / 10.0
            + self.stats.sync_ops as f64 * 3.0
    }
}

/// Observability-derived static-analysis measurements: how much of the
/// StaticBF wall time went to the entailment engine (§6.1). Captured as a
/// snapshot delta around the `instrument` call in [`measure`]; all zero
/// when `bigfoot-obs` collection is disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticObsStats {
    /// Total `static.instrument` span time, ns.
    pub analysis_ns: u64,
    /// Total outermost `entail.query` time, ns.
    pub entail_ns: u64,
    /// Entailment queries issued (all `entail.query.*` counters).
    pub entail_queries: u64,
}

impl StaticObsStats {
    /// Fraction of analysis wall time spent in the entailment engine.
    pub fn entail_share(&self) -> f64 {
        if self.analysis_ns == 0 {
            0.0
        } else {
            self.entail_ns as f64 / self.analysis_ns as f64
        }
    }
}

/// All measurements for one benchmark.
#[derive(Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall-clock base (uninstrumented, no detector) time.
    pub base_time: Duration,
    /// Base heap cells (Table 2 denominator).
    pub heap_cells: u64,
    /// Static-analysis statistics for the BigFoot instrumentation.
    pub static_stats: bigfoot::AnalysisStats,
    /// Entailment-engine share of the analysis, from `bigfoot-obs` spans.
    pub static_obs: StaticObsStats,
    /// Per-detector runs, in [`DETECTORS`] order.
    pub runs: Vec<DetectorRun>,
}

impl BenchResult {
    /// The run for a detector name.
    pub fn run(&self, name: &str) -> &DetectorRun {
        self.runs.iter().find(|r| r.name == name).expect("detector")
    }
}

/// Median-of-`reps` wall time for running `program` into `make_sink`'s
/// detector (or `None` for the base run). Returns the last run's stats.
fn timed<F: FnMut() -> Option<Detector>>(
    program: &Program,
    reps: usize,
    mut make_sink: F,
) -> (Duration, Option<Stats>) {
    let mut times = Vec::with_capacity(reps);
    let mut last_stats = None;
    for _ in 0..reps.max(1) {
        match make_sink() {
            None => {
                let t0 = Instant::now();
                Interp::new(program, SchedPolicy::default())
                    .run(&mut NullSink)
                    .expect("run");
                times.push(t0.elapsed());
            }
            Some(mut det) => {
                let t0 = Instant::now();
                Interp::new(program, SchedPolicy::default())
                    .run(&mut det)
                    .expect("run");
                times.push(t0.elapsed());
                last_stats = Some(det.finish());
            }
        }
    }
    times.sort();
    (times[times.len() / 2], last_stats)
}

/// Runs the full detector matrix over one benchmark program.
///
/// Instrumentation cost is charged faithfully: FastTrack and SlimState run
/// the *naively instrumented* program (one check statement per access, as
/// RoadRunner inserts one callback per access), RedCard/SlimCard run the
/// RedCard-instrumented program, and BigFoot runs the BigFoot-instrumented
/// program. Overheads are all relative to the uninstrumented base run.
pub fn measure(name: &'static str, program: &Program, reps: usize) -> BenchResult {
    let snap0 = bigfoot_obs::snapshot();
    let inst: Instrumented = instrument(program);
    let snap1 = bigfoot_obs::snapshot();
    let static_obs = StaticObsStats {
        analysis_ns: snap1.timer_total("static.instrument")
            - snap0.timer_total("static.instrument"),
        entail_ns: snap1.timer_total("entail.query") - snap0.timer_total("entail.query"),
        entail_queries: snap1.counter_total("entail.query.") - snap0.counter_total("entail.query."),
    };
    let (rc_prog, rc_proxies) = redcard_instrument(program);
    let naive = naive_instrument(program);

    let (base_time, _) = timed(program, reps, || None);
    let heap_cells = {
        let mut i = Interp::new(program, SchedPolicy::default());
        i.run(&mut NullSink).expect("run");
        i.heap().cells()
    };

    let mut runs = Vec::new();
    let (t, s) = timed(&naive, reps, || {
        Some(Detector::new(
            "FastTrack",
            CheckSource::CheckEvents,
            ArrayEngine::Fine,
            ProxyTable::identity(),
        ))
    });
    runs.push(DetectorRun {
        name: "FT",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&rc_prog, reps, || {
        Some(Detector::redcard(rc_proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "RC",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&naive, reps, || {
        Some(Detector::new(
            "SlimState",
            CheckSource::CheckEvents,
            ArrayEngine::Footprint,
            ProxyTable::identity(),
        ))
    });
    runs.push(DetectorRun {
        name: "SS",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&rc_prog, reps, || {
        Some(Detector::slimcard(rc_proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "SC",
        time: t,
        stats: s.unwrap(),
    });
    let (t, s) = timed(&inst.program, reps, || {
        Some(Detector::bigfoot(inst.proxies.clone()))
    });
    runs.push(DetectorRun {
        name: "BF",
        time: t,
        stats: s.unwrap(),
    });

    BenchResult {
        name,
        base_time,
        heap_cells,
        static_stats: inst.stats,
        static_obs,
        runs,
    }
}

/// One ablation configuration of the static analysis.
pub const ABLATIONS: [(&str, InstrumentOptions); 5] = [
    (
        "full",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-anticipation",
        InstrumentOptions {
            anticipation: false,
            coalescing: true,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-coalescing",
        InstrumentOptions {
            anticipation: true,
            coalescing: false,
            loop_invariants: true,
            field_proxies: true,
        },
    ),
    (
        "-loop-motion",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: false,
            field_proxies: true,
        },
    ),
    (
        "-proxies",
        InstrumentOptions {
            anticipation: true,
            coalescing: true,
            loop_invariants: true,
            field_proxies: false,
        },
    ),
];

/// Runs the BigFoot detector under one ablation configuration and returns
/// (wall time, stats).
pub fn measure_ablation(program: &Program, options: InstrumentOptions, reps: usize) -> DetectorRun {
    let inst = instrument_with(program, options);
    let (t, s) = timed(&inst.program, reps, || {
        Some(Detector::bigfoot(inst.proxies.clone()))
    });
    DetectorRun {
        name: "BF",
        time: t,
        stats: s.expect("stats"),
    }
}

/// Geometric mean of positive values (zeroes clamped to a small epsilon,
/// as overheads of 0 would otherwise collapse the mean).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-3).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// A pure-detector measurement that replays the instrumented program once
/// and returns only the statistics (no timing) — cheap enough for tests.
pub fn stats_only(name: &'static str, program: &Program) -> BenchResult {
    measure(name, program, 1)
}

/// One worker count's replay measurement.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Worker threads used.
    pub workers: usize,
    /// Median wall time of the replay detection stage.
    pub time: Duration,
    /// True if the replay's stats and races are bit-identical to the
    /// serial detector's over the same trace (they must be).
    pub matches_serial: bool,
}

/// Record-once/replay-many measurements for one benchmark under the
/// BigFoot detector configuration.
#[derive(Debug)]
pub struct ReplayResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Serialized trace size, bytes.
    pub trace_bytes: u64,
    /// Events in the trace.
    pub trace_events: u64,
    /// Wall time of the recording run (interpreter + trace encoding).
    pub record_time: Duration,
    /// Median wall time of serial detection over the recorded trace.
    pub serial_time: Duration,
    /// Serial detection statistics (the reference verdicts).
    pub serial_stats: Stats,
    /// Parallel replay runs, one per requested worker count.
    pub replays: Vec<ReplayRun>,
}

impl ReplayResult {
    /// True if every worker count reproduced the serial verdicts exactly.
    pub fn all_match(&self) -> bool {
        self.replays.iter().all(|r| r.matches_serial)
    }
}

/// True if two stats blocks are bit-identical (races and every counter,
/// via the stable JSON serialization).
pub fn stats_identical(a: &Stats, b: &Stats) -> bool {
    a.races == b.races && a.to_json().to_string_compact() == b.to_json().to_string_compact()
}

/// Records one benchmark run to a trace, then measures serial detection
/// and sharded parallel replay over it at each worker count (median of
/// `reps`), verifying that every replay reproduces the serial verdicts.
///
/// Uses the BigFoot detector configuration (instrumented program +
/// proxies), the paper's headline detector.
pub fn measure_replay(
    name: &'static str,
    program: &Program,
    workers: &[usize],
    reps: usize,
) -> ReplayResult {
    let inst: Instrumented = instrument(program);

    let t0 = Instant::now();
    let mut writer = TraceWriter::new();
    Interp::new(&inst.program, SchedPolicy::default())
        .run(&mut writer)
        .expect("run");
    let record_time = t0.elapsed();
    let trace_events = writer.events();
    let bytes = writer.into_bytes();

    let mut serial_times = Vec::with_capacity(reps);
    let mut serial_stats = None;
    for _ in 0..reps.max(1) {
        let mut det = Detector::bigfoot(inst.proxies.clone());
        let t0 = Instant::now();
        for ev in TraceReader::new(&bytes).expect("trace header") {
            det.event(&ev.expect("trace event"));
        }
        let stats = det.finish();
        serial_times.push(t0.elapsed());
        serial_stats = Some(stats);
    }
    serial_times.sort();
    let serial_time = serial_times[serial_times.len() / 2];
    let serial_stats = serial_stats.expect("serial stats");

    let replays = workers
        .iter()
        .map(|&w| {
            let config = ReplayConfig::bigfoot(inst.proxies.clone(), w);
            let mut times = Vec::with_capacity(reps);
            let mut matches = true;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let stats = replay_trace(&bytes, &config).expect("replay");
                times.push(t0.elapsed());
                matches &= stats_identical(&stats, &serial_stats);
            }
            times.sort();
            ReplayRun {
                workers: w,
                time: times[times.len() / 2],
                matches_serial: matches,
            }
        })
        .collect();

    ReplayResult {
        name,
        trace_bytes: bytes.len() as u64,
        trace_events,
        record_time,
        serial_time,
        serial_stats,
        replays,
    }
}
