//! Criterion benches for S TATIC BF itself (the §6.1 scaling claim): full
//! pipeline per benchmark program, plus the RedCard baseline instrumenter.

use bigfoot::{instrument, redcard_instrument};
use bigfoot_workloads::{benchmarks, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_static(c: &mut Criterion) {
    let programs = benchmarks(Scale::Small);
    let mut group = c.benchmark_group("static_analysis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for b in &programs {
        group.bench_with_input(
            BenchmarkId::new("bigfoot", b.name),
            &b.program,
            |bench, p| bench.iter(|| instrument(p).stats.checks_inserted),
        );
    }
    for b in programs.iter().take(4) {
        group.bench_with_input(
            BenchmarkId::new("redcard", b.name),
            &b.program,
            |bench, p| bench.iter(|| redcard_instrument(p).0.stmt_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
