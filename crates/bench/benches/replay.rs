//! Criterion bench: serial detection vs sharded parallel trace replay.
//!
//! Each benchmark program is recorded once; the bench then measures the
//! pure detection stage — the serial [`Detector`] fed from the trace, and
//! [`replay_trace`] at 2, 4, and 8 workers — over identical input bytes,
//! so the comparison isolates detection from interpretation.

use bigfoot::instrument;
use bigfoot_bfj::{trace::TraceWriter, EventSink, Interp, SchedPolicy};
use bigfoot_detectors::{replay_trace, Detector, ReplayConfig, TraceReader};
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["crypt", "moldyn", "raytracer", "lufact"] {
        let b = benchmark(name, Scale::Small).expect("benchmark");
        let inst = instrument(&b.program);
        let mut writer = TraceWriter::new();
        Interp::new(&inst.program, SchedPolicy::default())
            .run(&mut writer)
            .expect("run");
        let bytes = writer.into_bytes();

        group.bench_with_input(BenchmarkId::new("serial", name), &bytes, |bench, bytes| {
            bench.iter(|| {
                let mut det = Detector::bigfoot(inst.proxies.clone());
                for ev in TraceReader::new(bytes).expect("header") {
                    det.event(&ev.expect("event"));
                }
                det.finish().shadow_ops
            })
        });
        for workers in [2usize, 4, 8] {
            let config = ReplayConfig::bigfoot(inst.proxies.clone(), workers);
            group.bench_with_input(
                BenchmarkId::new(&format!("replay-{workers}w"), name),
                &bytes,
                |bench, bytes| {
                    bench.iter(|| replay_trace(bytes, &config).expect("replay").shadow_ops)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
