//! Criterion micro-benches for the entailment engine (the Z3 stand-in):
//! Fourier–Motzkin queries, range subsumption, and the §4 coalescer.

use bigfoot_bfj::parse_expr;
use bigfoot_entail::{coalesce, covered_by_union, linearize, Kb, SymRange};
use criterion::{criterion_group, criterion_main, Criterion};

fn kb_with(facts: &[&str]) -> Kb {
    let mut kb = Kb::new();
    for f in facts {
        kb.assume(&parse_expr(f).unwrap());
    }
    kb
}

fn rng(lo: &str, hi: &str, step: i64) -> SymRange {
    SymRange {
        lo: linearize(&parse_expr(lo).unwrap()).unwrap(),
        hi: linearize(&parse_expr(hi).unwrap()).unwrap(),
        step,
    }
}

fn bench_entailment(c: &mut Criterion) {
    c.bench_function("entails/transitive_chain", |b| {
        let facts = ["a <= b", "b <= c", "c <= d", "d <= e", "e <= f"];
        let q = parse_expr("a <= f").unwrap();
        b.iter(|| {
            let mut kb = kb_with(&facts);
            kb.entails(&q)
        })
    });
    c.bench_function("entails/loop_invariant_shape", |b| {
        let facts = ["i == ip + 1", "ip >= 0", "n == m", "lo >= 0", "hi <= n"];
        let q = parse_expr("ip + 1 <= n").unwrap();
        b.iter(|| {
            let mut kb = kb_with(&facts);
            kb.entails(&q)
        })
    });
    c.bench_function("range/union_coverage", |b| {
        b.iter(|| {
            let mut kb = kb_with(&["i == ip + 1", "ip >= 0"]);
            let query = rng("0", "i", 1);
            let facts = [
                rng("0", "ip", 1),
                SymRange::singleton(linearize(&parse_expr("ip").unwrap()).unwrap()),
            ];
            covered_by_union(&mut kb, &query, &facts)
        })
    });
    c.bench_function("range/coalesce_residues", |b| {
        b.iter(|| {
            let mut kb = Kb::new();
            coalesce(&mut kb, &[rng("0", "n", 2), rng("1", "n", 2)])
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_entailment
}
criterion_main!(benches);
