//! Criterion bench: serial vs pipelined end-to-end detection.
//!
//! Measures the full interpret-and-detect loop two ways — detector inline
//! with the interpreter on one thread, and detector on its own thread fed
//! through the batched SPSC ring — plus a batch-size sweep, so the
//! overlap win and the hand-off overhead are both visible.

use bigfoot::instrument;
use bigfoot_bfj::{Interp, SchedPolicy};
use bigfoot_detectors::{
    detect_pipelined, djit_sharded, run_pipelined, Detector, DjitDetector, PipelineConfig,
    DEFAULT_RING_SLOTS,
};
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["crypt", "moldyn", "raytracer", "lufact"] {
        let b = benchmark(name, Scale::Small).expect("benchmark");
        let inst = instrument(&b.program);

        group.bench_with_input(BenchmarkId::new("serial", name), &inst, |bench, inst| {
            bench.iter(|| {
                let mut det = Detector::bigfoot(inst.proxies.clone());
                Interp::new(&inst.program, SchedPolicy::default())
                    .run(&mut det)
                    .expect("run");
                det.finish().shadow_ops
            })
        });
        for batch in [256usize, 4096, 16384] {
            let config = PipelineConfig {
                batch_events: batch,
                ring_slots: DEFAULT_RING_SLOTS,
            };
            group.bench_with_input(
                BenchmarkId::new(&format!("pipelined-{batch}b"), name),
                &inst,
                |bench, inst| {
                    bench.iter(|| {
                        let (_, stats) = detect_pipelined(
                            &config,
                            |sink| {
                                Interp::new(&inst.program, SchedPolicy::default())
                                    .run(sink)
                                    .expect("run")
                            },
                            Detector::bigfoot(inst.proxies.clone()),
                        );
                        stats.shadow_ops
                    })
                },
            );
        }
    }
    group.finish();
}

/// The case the pipeline exists for: a consumer whose per-event cost
/// rivals the interpreter's. Djit compares full vector clocks on every
/// access, so moving it off the interpreter thread overlaps real work
/// instead of hiding a few nanoseconds.
fn bench_pipeline_djit(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline-djit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["crypt", "moldyn"] {
        let b = benchmark(name, Scale::Small).expect("benchmark");
        let inst = instrument(&b.program);

        group.bench_with_input(BenchmarkId::new("serial", name), &inst, |bench, inst| {
            bench.iter(|| {
                let mut det = DjitDetector::new();
                Interp::new(&inst.program, SchedPolicy::default())
                    .run(&mut det)
                    .expect("run");
                det.finish().shadow_ops
            })
        });
        let config = PipelineConfig::default();
        group.bench_with_input(BenchmarkId::new("pipelined", name), &inst, |bench, inst| {
            bench.iter(|| {
                let (_, det) = run_pipelined(
                    &config,
                    |sink| {
                        Interp::new(&inst.program, SchedPolicy::default())
                            .run(sink)
                            .expect("run")
                    },
                    DjitDetector::new(),
                );
                det.finish().shadow_ops
            })
        });
        // Sharded fan-out of the same heavy consumer: router + N workers.
        for workers in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(&format!("sharded-{workers}w"), name),
                &inst,
                |bench, inst| {
                    bench.iter(|| {
                        let (_, stats) = djit_sharded(&config, workers, |sink| {
                            Interp::new(&inst.program, SchedPolicy::default())
                                .run(sink)
                                .expect("run")
                        });
                        stats.shadow_ops
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_pipeline_djit);
criterion_main!(benches);
