//! Criterion benches: end-to-end detector throughput on representative
//! Table 1 workloads (small scale — the full sweep lives in `repro`).

use bigfoot::{instrument, naive_instrument, redcard_instrument};
use bigfoot_bfj::{Interp, NullSink, SchedPolicy};
use bigfoot_detectors::{ArrayEngine, CheckSource, Detector, ProxyTable};
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["crypt", "moldyn", "h2", "raytracer", "lufact"] {
        let b = benchmark(name, Scale::Small).expect("benchmark");
        let inst = instrument(&b.program);
        let (rc_prog, rc_proxies) = redcard_instrument(&b.program);
        let naive = naive_instrument(&b.program);

        group.bench_with_input(BenchmarkId::new("base", name), &b.program, |bench, p| {
            bench.iter(|| {
                Interp::new(p, SchedPolicy::default())
                    .run(&mut NullSink)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("FT", name), &naive, |bench, p| {
            bench.iter(|| {
                let mut det = Detector::new(
                    "FT",
                    CheckSource::CheckEvents,
                    ArrayEngine::Fine,
                    ProxyTable::identity(),
                );
                Interp::new(p, SchedPolicy::default())
                    .run(&mut det)
                    .unwrap();
                det.finish().shadow_ops
            })
        });
        group.bench_with_input(BenchmarkId::new("RC", name), &rc_prog, |bench, p| {
            bench.iter(|| {
                let mut det = Detector::redcard(rc_proxies.clone());
                Interp::new(p, SchedPolicy::default())
                    .run(&mut det)
                    .unwrap();
                det.finish().shadow_ops
            })
        });
        group.bench_with_input(BenchmarkId::new("SS", name), &naive, |bench, p| {
            bench.iter(|| {
                let mut det = Detector::new(
                    "SS",
                    CheckSource::CheckEvents,
                    ArrayEngine::Footprint,
                    ProxyTable::identity(),
                );
                Interp::new(p, SchedPolicy::default())
                    .run(&mut det)
                    .unwrap();
                det.finish().shadow_ops
            })
        });
        group.bench_with_input(BenchmarkId::new("BF", name), &inst.program, |bench, p| {
            bench.iter(|| {
                let mut det = Detector::bigfoot(inst.proxies.clone());
                Interp::new(p, SchedPolicy::default())
                    .run(&mut det)
                    .unwrap();
                det.finish().shadow_ops
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
