//! Criterion bench of the detector event loop alone: each benchmark is
//! recorded to a trace once and the pre-decoded events are streamed
//! through the detector, so the numbers move with the detector hot path
//! and not with the interpreter. This is the bench the `BENCH.json`
//! events/sec baseline tracks (see docs/PERFORMANCE.md).

use bigfoot::{instrument, naive_instrument};
use bigfoot_bfj::{trace::TraceWriter, Event, EventSink, Interp, Program, SchedPolicy};
use bigfoot_detectors::{ArrayEngine, CheckSource, Detector, ProxyTable, TraceReader};
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn record(program: &Program) -> Vec<Event> {
    let mut writer = TraceWriter::new();
    Interp::new(program, SchedPolicy::default())
        .run(&mut writer)
        .expect("run");
    let bytes = writer.into_bytes();
    TraceReader::new(&bytes)
        .expect("trace header")
        .map(|ev| ev.expect("trace event"))
        .collect()
}

fn drive(events: &[Event], mut det: Detector) -> u64 {
    for ev in events {
        det.event(ev);
    }
    det.finish().shadow_ops
}

fn bench_detector_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_loop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["crypt", "moldyn", "lufact"] {
        let b = benchmark(name, Scale::Small).expect("benchmark");
        let naive_trace = record(&naive_instrument(&b.program));
        let inst = instrument(&b.program);
        let bf_trace = record(&inst.program);

        group.bench_with_input(BenchmarkId::new("FT", name), &naive_trace, |bench, t| {
            bench.iter(|| {
                drive(
                    t,
                    Detector::new(
                        "FT",
                        CheckSource::CheckEvents,
                        ArrayEngine::Fine,
                        ProxyTable::identity(),
                    ),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("SS", name), &naive_trace, |bench, t| {
            bench.iter(|| {
                drive(
                    t,
                    Detector::new(
                        "SS",
                        CheckSource::CheckEvents,
                        ArrayEngine::Footprint,
                        ProxyTable::identity(),
                    ),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("BF", name), &bf_trace, |bench, t| {
            bench.iter(|| drive(t, Detector::bigfoot(inst.proxies.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detector_loop);
criterion_main!(benches);
