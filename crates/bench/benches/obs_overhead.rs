//! Proves the observability substrate is near-zero-cost when disabled:
//! detector throughput with `bigfoot-obs` collection off must stay within
//! a few percent of itself between two interleaved measurement passes,
//! and the bench prints the disabled-vs-enabled ratio so regressions in
//! the disabled path (the single relaxed atomic load per site) are
//! visible in CI output.
//!
//! Run with `cargo bench --bench obs_overhead`.

use bigfoot::instrument;
use bigfoot_bfj::{Interp, SchedPolicy};
use bigfoot_detectors::Detector;
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn detector_pass(program: &bigfoot_bfj::Program, proxies: &bigfoot_detectors::ProxyTable) -> u64 {
    let mut det = Detector::bigfoot(proxies.clone());
    Interp::new(program, SchedPolicy::default())
        .run(&mut det)
        .unwrap();
    det.finish().shadow_ops
}

fn bench_obs_overhead(c: &mut Criterion) {
    let b = benchmark("moldyn", Scale::Small).expect("benchmark");
    let inst = instrument(&b.program);

    bigfoot_obs::set_enabled(false);
    c.bench_function("obs/disabled", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::set_enabled(true);
    c.bench_function("obs/enabled", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::set_enabled(false);
    // Second disabled pass: measured after the enabled pass so cache/JIT
    // drift shows up as disagreement between the two disabled numbers.
    c.bench_function("obs/disabled-again", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });

    let median = |id: &str| -> f64 {
        c.samples
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns())
            .unwrap_or(0.0)
    };
    let disabled = median("obs/disabled").min(median("obs/disabled-again"));
    let enabled = median("obs/enabled");
    if disabled > 0.0 {
        println!(
            "obs overhead: enabled/disabled = {:.3}x (disabled medians {:.0} ns / {:.0} ns)",
            enabled / disabled,
            median("obs/disabled"),
            median("obs/disabled-again"),
        );
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
