//! Proves the observability substrate is near-zero-cost when disabled:
//! detector throughput with `bigfoot-obs` collection off must stay within
//! a few percent of itself between two interleaved measurement passes,
//! and the bench prints the disabled-vs-enabled ratio so regressions in
//! the disabled path (the single relaxed atomic load per site) are
//! visible in CI output.
//!
//! Run with `cargo bench --bench obs_overhead`.

use bigfoot::instrument;
use bigfoot_bfj::{Interp, SchedPolicy};
use bigfoot_detectors::{detect_pipelined, Detector, PipelineConfig};
use bigfoot_workloads::{benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn detector_pass(program: &bigfoot_bfj::Program, proxies: &bigfoot_detectors::ProxyTable) -> u64 {
    let mut det = Detector::bigfoot(proxies.clone());
    Interp::new(program, SchedPolicy::default())
        .run(&mut det)
        .unwrap();
    det.finish().shadow_ops
}

fn pipelined_pass(program: &bigfoot_bfj::Program, proxies: &bigfoot_detectors::ProxyTable) -> u64 {
    let det = Detector::bigfoot(proxies.clone());
    let (outcome, stats) = detect_pipelined(
        &PipelineConfig::default(),
        |sink| Interp::new(program, SchedPolicy::default()).run(sink),
        det,
    );
    outcome.unwrap();
    stats.shadow_ops
}

fn bench_obs_overhead(c: &mut Criterion) {
    let b = benchmark("moldyn", Scale::Small).expect("benchmark");
    let inst = instrument(&b.program);

    bigfoot_obs::set_enabled(false);
    c.bench_function("obs/disabled", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::set_enabled(true);
    c.bench_function("obs/enabled", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::set_enabled(false);
    // Second disabled pass: measured after the enabled pass so cache/JIT
    // drift shows up as disagreement between the two disabled numbers.
    c.bench_function("obs/disabled-again", |bench| {
        bench.iter(|| detector_pass(&inst.program, &inst.proxies))
    });

    // The flight recorder's sites (pipeline wait spans, batch instants,
    // counter tracks) are hottest on the pipelined path; the guarantee is
    // that with tracing compiled in but *disabled* — one relaxed load per
    // site — pipelined throughput holds within a few percent of itself.
    bigfoot_obs::set_enabled(false);
    bigfoot_obs::trace::set_enabled(false);
    c.bench_function("trace/disabled", |bench| {
        bench.iter(|| pipelined_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::trace::set_enabled(true);
    c.bench_function("trace/enabled", |bench| {
        bench.iter(|| pipelined_pass(&inst.program, &inst.proxies))
    });
    bigfoot_obs::trace::set_enabled(false);
    c.bench_function("trace/disabled-again", |bench| {
        bench.iter(|| pipelined_pass(&inst.program, &inst.proxies))
    });

    let median = |id: &str| -> f64 {
        c.samples
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns())
            .unwrap_or(0.0)
    };
    let disabled = median("obs/disabled").min(median("obs/disabled-again"));
    let enabled = median("obs/enabled");
    if disabled > 0.0 {
        println!(
            "obs overhead: enabled/disabled = {:.3}x (disabled medians {:.0} ns / {:.0} ns)",
            enabled / disabled,
            median("obs/disabled"),
            median("obs/disabled-again"),
        );
    }
    let trace_disabled = median("trace/disabled").min(median("trace/disabled-again"));
    let trace_enabled = median("trace/enabled");
    if trace_disabled > 0.0 {
        println!(
            "trace overhead: enabled/disabled = {:.3}x (disabled medians {:.0} ns / {:.0} ns)",
            trace_enabled / trace_disabled,
            median("trace/disabled"),
            median("trace/disabled-again"),
        );
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
