//! Criterion micro-benches for the shadow-memory substrate: adaptive array
//! commits, footprint construction, and raw FastTrack state transitions.

use bigfoot_bfj::ConcreteRange;
use bigfoot_detectors::SyncClocks;
use bigfoot_shadow::{ArrayShadow, RangeSet};
use bigfoot_vc::{AccessKind, Tid, VarState, VectorClock};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_shadow(c: &mut Criterion) {
    let mut clock = VectorClock::new();
    clock.tick(Tid(0));

    c.bench_function("array/coarse_whole_commit", |b| {
        let mut sh = ArrayShadow::new(4096);
        b.iter(|| {
            sh.apply(
                ConcreteRange::contiguous(0, 4096),
                AccessKind::Write,
                Tid(0),
                &clock,
            )
            .shadow_ops
        })
    });
    c.bench_function("array/fine_per_element_pass", |b| {
        b.iter(|| {
            let mut sh = ArrayShadow::new(256);
            // Misaligned strided commit forces fine-grained.
            sh.apply(
                ConcreteRange {
                    lo: 3,
                    hi: 11,
                    step: 2,
                },
                AccessKind::Write,
                Tid(0),
                &clock,
            );
            let mut ops = 0;
            for i in 0..256 {
                ops += sh
                    .apply(
                        ConcreteRange::singleton(i),
                        AccessKind::Write,
                        Tid(0),
                        &clock,
                    )
                    .shadow_ops;
            }
            ops
        })
    });
    c.bench_function("footprint/sequential_build", |b| {
        b.iter(|| {
            let mut rs = RangeSet::new();
            for i in 0..1024 {
                rs.push_index(i);
            }
            rs.len()
        })
    });
    c.bench_function("varstate/same_epoch_reads", |b| {
        let mut v = VarState::new();
        v.read(Tid(0), &clock).unwrap();
        b.iter(|| v.read(Tid(0), &clock).is_ok())
    });
    c.bench_function("sync/lock_handover", |b| {
        b.iter(|| {
            let mut s = SyncClocks::new();
            for _ in 0..100 {
                s.release(Tid(0), bigfoot_bfj::ObjId(0));
                s.acquire(Tid(1), bigfoot_bfj::ObjId(0));
                s.release(Tid(1), bigfoot_bfj::ObjId(0));
                s.acquire(Tid(0), bigfoot_bfj::ObjId(0));
            }
            s.sync_ops()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_shadow
}
criterion_main!(benches);
