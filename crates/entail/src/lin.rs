//! Normalized linear expressions over program variables.
//!
//! The entailment engine reasons about BFJ expressions by normalizing them
//! into linear combinations of *atoms*. Genuinely non-linear subexpressions
//! (`x*y`, `n/2`, `i%3`) become opaque atoms identified by their printed
//! form, so syntactically identical non-linear terms still compare equal —
//! exactly the precision the check-placement analysis needs (e.g. to match
//! `a.length/2` across two program points).

use bigfoot_bfj::{pretty_expr, Binop, Expr, Sym, Unop};
use std::collections::BTreeMap;

/// An atom of a linear expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A program variable.
    Var(Sym),
    /// The length of the array in a variable.
    Len(Sym),
    /// An opaque non-linear term, keyed by its canonical rendering.
    Opaque(Sym),
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Atom::Var(x) => write!(f, "{x}"),
            Atom::Len(a) => write!(f, "{a}.length"),
            Atom::Opaque(s) => write!(f, "{s}"),
        }
    }
}

/// A linear expression `Σ cᵢ·atomᵢ + k` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lin {
    /// Non-zero coefficients per atom.
    pub terms: BTreeMap<Atom, i64>,
    /// The constant offset.
    pub konst: i64,
}

impl Lin {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> Lin {
        Lin {
            terms: BTreeMap::new(),
            konst: k,
        }
    }

    /// The expression `1·atom`.
    pub fn atom(a: Atom) -> Lin {
        let mut terms = BTreeMap::new();
        terms.insert(a, 1);
        Lin { terms, konst: 0 }
    }

    /// The variable expression `x`.
    pub fn var(x: Sym) -> Lin {
        Lin::atom(Atom::Var(x))
    }

    /// True if the expression is a constant.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if constant.
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.konst)
    }

    /// `self + other`.
    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.konst = out.konst.wrapping_add(other.konst);
        for (a, c) in &other.terms {
            let e = out.terms.entry(*a).or_insert(0);
            *e = e.wrapping_add(*c);
            if *e == 0 {
                out.terms.remove(a);
            }
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// `c · self`.
    pub fn scale(&self, c: i64) -> Lin {
        if c == 0 {
            return Lin::constant(0);
        }
        Lin {
            terms: self
                .terms
                .iter()
                .map(|(a, k)| (*a, k.wrapping_mul(c)))
                .collect(),
            konst: self.konst.wrapping_mul(c),
        }
    }

    /// `self + k`.
    pub fn offset(&self, k: i64) -> Lin {
        let mut out = self.clone();
        out.konst = out.konst.wrapping_add(k);
        out
    }

    /// The atoms mentioned.
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.terms.keys().copied()
    }

    /// Reconstructs a BFJ expression denoting this value.
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        for (a, &c) in &self.terms {
            let base = match a {
                Atom::Var(x) => Expr::Var(*x),
                Atom::Len(x) => Expr::Len(*x),
                // Opaque atoms are keyed by their rendering, which is
                // valid expression syntax; re-parse to recover the term.
                Atom::Opaque(s) => bigfoot_bfj::parse_expr(s.as_str()).unwrap_or(Expr::Var(*s)),
            };
            let term = match c {
                1 => base,
                -1 => Expr::Unop(Unop::Neg, Box::new(base)),
                c => Expr::Binop(Binop::Mul, Box::new(Expr::Int(c)), Box::new(base)),
            };
            acc = Some(match acc {
                None => term,
                Some(prev) => Expr::add(prev, term),
            });
        }
        match acc {
            None => Expr::Int(self.konst),
            Some(e) if self.konst == 0 => e,
            Some(e) if self.konst > 0 => Expr::add(e, Expr::Int(self.konst)),
            Some(e) => Expr::sub(e, Expr::Int(-self.konst)),
        }
    }
}

impl std::fmt::Display for Lin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", pretty_expr(&self.to_expr()))
    }
}

/// Normalizes a BFJ expression into a [`Lin`], introducing opaque atoms for
/// non-linear subterms. Returns `None` for boolean expressions.
pub fn linearize(e: &Expr) -> Option<Lin> {
    match e {
        Expr::Int(n) => Some(Lin::constant(*n)),
        Expr::Bool(_) | Expr::Null => None,
        Expr::Var(x) => Some(Lin::var(*x)),
        Expr::Len(a) => Some(Lin::atom(Atom::Len(*a))),
        Expr::Unop(Unop::Neg, a) => Some(linearize(a)?.scale(-1)),
        Expr::Unop(Unop::Not, _) => None,
        Expr::Binop(op, a, b) => match op {
            Binop::Add => Some(linearize(a)?.add(&linearize(b)?)),
            Binop::Sub => Some(linearize(a)?.sub(&linearize(b)?)),
            Binop::Mul => {
                let la = linearize(a)?;
                let lb = linearize(b)?;
                match (la.as_const(), lb.as_const()) {
                    (Some(c), _) => Some(lb.scale(c)),
                    (_, Some(c)) => Some(la.scale(c)),
                    _ => Some(Lin::atom(opaque(e))),
                }
            }
            Binop::Div | Binop::Mod => {
                let la = linearize(a)?;
                let lb = linearize(b)?;
                match (la.as_const(), lb.as_const()) {
                    (Some(x), Some(y)) if y != 0 => Some(Lin::constant(match op {
                        Binop::Div => x / y,
                        _ => x % y,
                    })),
                    _ => Some(Lin::atom(opaque(e))),
                }
            }
            _ => None, // comparisons and boolean connectives
        },
    }
}

fn opaque(e: &Expr) -> Atom {
    Atom::Opaque(Sym::intern(&pretty_expr(e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(src: &str) -> Lin {
        // Parse via a tiny program wrapper.
        let p = bigfoot_bfj::parse_program(&format!("main {{ q$ = {src}; }}")).unwrap();
        match &p.main.stmts[0].kind {
            bigfoot_bfj::StmtKind::Assign { e, .. } => linearize(e).unwrap(),
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn linear_normalization() {
        assert_eq!(lin("1 + 2 * 3"), Lin::constant(7));
        assert_eq!(lin("x + x"), lin("2 * x"));
        assert_eq!(lin("x - x"), Lin::constant(0));
        assert_eq!(lin("(x + 1) - (x - 1)"), Lin::constant(2));
        assert_eq!(lin("3 * (x + y) - 2 * y"), lin("3 * x + y"));
    }

    #[test]
    fn opaque_terms_compare_syntactically() {
        assert_eq!(lin("n / 2"), lin("n / 2"));
        assert_ne!(lin("n / 2"), lin("n / 3"));
        assert_eq!(lin("x * y + 1"), lin("x * y").offset(1));
    }

    #[test]
    fn length_atoms() {
        let l = lin("a.length - 1");
        assert_eq!(l.konst, -1);
        assert!(l.atoms().any(|a| matches!(a, Atom::Len(_))));
    }

    #[test]
    fn to_expr_roundtrip() {
        for src in ["x + 1", "2 * x - 3", "x + y", "0", "a.length"] {
            let l = lin(src);
            let back = linearize(&l.to_expr()).unwrap();
            assert_eq!(l, back, "roundtrip of {src}");
        }
    }

    #[test]
    fn negation_scales() {
        assert_eq!(lin("-x").scale(-1), lin("x"));
    }
}
