//! Entailment engine for the BigFoot static analysis.
//!
//! The paper's S TATIC BF implementation discharges history and
//! anticipated-set entailments (`H ⊢ h`, `H•A ⊢ a`) with the Z3 SMT
//! solver. All of those queries fall into a small fragment — linear
//! integer arithmetic over method locals, heap-alias congruence, strided
//! index ranges, and divisibility side conditions — so this crate
//! implements a dedicated, deterministic decision procedure for exactly
//! that fragment instead of binding an external solver.
//!
//! The three layers:
//!
//! * [`Lin`]/[`linearize`]: normalization of BFJ expressions into linear
//!   forms (non-linear subterms become opaque atoms compared
//!   syntactically);
//! * [`Kb`]: a fact base answering boolean entailment via
//!   Fourier–Motzkin refutation, reference equality via congruence
//!   closure, and `≡ (mod m)` queries;
//! * [`SymRange`] with [`subsumes`], [`covered_by_union`], and
//!   [`coalesce`]: the strided-range algebra used for array-check motion
//!   and the §4 coalescing step.
//!
//! Every query is *conservative*: an unprovable entailment simply means
//! the analysis places an extra (legitimate) check, never an unsound one.
//!
//! # Examples
//!
//! ```
//! use bigfoot_entail::{coalesce, Kb, SymRange, linearize};
//! use bigfoot_bfj::Expr;
//!
//! // Coalesce a[0..i'] ∪ {i'} into a[0..i'+1] (the paper's Fig. 6(b)).
//! let mut kb = Kb::new();
//! // The loop context knows i >= 0.
//! kb.assume(&Expr::Binop(
//!     bigfoot_bfj::Binop::Ge,
//!     Box::new(Expr::var("i")),
//!     Box::new(Expr::Int(0)),
//! ));
//! let i = linearize(&Expr::var("i")).unwrap();
//! let prefix = SymRange { lo: linearize(&Expr::Int(0)).unwrap(), hi: i.clone(), step: 1 };
//! let last = SymRange::singleton(i);
//! let merged = coalesce(&mut kb, &[prefix, last]).unwrap();
//! assert_eq!(merged.to_ast().step, 1);
//! ```

mod kb;
mod lin;
mod obs;
mod range;

pub use kb::{AliasRhs, Kb};
pub use lin::{linearize, Atom, Lin};
pub use range::{coalesce, covered_by_union, subsumes, SymRange};

/// Version of the entailment engine's observable behavior (KB fact
/// handling, linearization, range subsumption). Persistent placement
/// caches fold this into their analysis-config fingerprint so entries
/// computed under older entailment semantics are invalidated rather than
/// replayed: every KB/alias fact a placement depends on is derived
/// per-method through this engine, so a behavior change here is a fact
/// change everywhere. Bump on any change to query results.
pub const ENTAIL_VERSION: u32 = 1;
