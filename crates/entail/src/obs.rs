//! Reentrancy-guarded timing of entailment queries.
//!
//! The range algebra calls back into [`crate::Kb`] entailment
//! (`subsumes` → `proves_le`/`proves_cong`, `coalesce` → pair merging →
//! more queries), and queries decompose into sub-queries, so a naive span
//! at every public entry would double-count solver time. A thread-local
//! depth counter makes only the *outermost* query on each thread record
//! into the shared `entail.query` timer; per-entry-point counters still
//! count every call. The timer total is what `repro static --json`
//! reports as the entailment engine's share of StaticBF wall time.
//!
//! When flight-recorder tracing is on, the same outermost queries also
//! bracket `entail.query` spans on the analysis thread's timeline, so a
//! `--trace-out` run of StaticBF shows solver time nested inside the
//! phase spans.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

static QUERY_TIMER: bigfoot_obs::LazyTimer = bigfoot_obs::LazyTimer::new("entail.query");
static QUERY_TNAME: bigfoot_obs::trace::LazyTraceName =
    bigfoot_obs::trace::LazyTraceName::new("entail.query");

/// RAII guard timing the enclosing query iff it is the outermost one on
/// this thread and collection (or tracing) is enabled. When both are off
/// the guard does nothing at all (not even depth bookkeeping).
pub(crate) struct QueryGuard {
    start: Option<Instant>,
    counted: bool,
    traced: bool,
}

impl QueryGuard {
    #[inline]
    pub(crate) fn enter() -> QueryGuard {
        let metrics = bigfoot_obs::enabled();
        let tracing = bigfoot_obs::trace::enabled();
        if !metrics && !tracing {
            return QueryGuard {
                start: None,
                counted: false,
                traced: false,
            };
        }
        let outermost = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v == 0
        });
        let traced = outermost && tracing;
        if traced {
            bigfoot_obs::trace::begin(&QUERY_TNAME);
        }
        QueryGuard {
            start: (outermost && metrics).then(Instant::now),
            counted: true,
            traced,
        }
    }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        if self.counted {
            DEPTH.with(|d| d.set(d.get() - 1));
        }
        if let Some(start) = self.start {
            QUERY_TIMER.record(start.elapsed().as_nanos() as u64);
        }
        if self.traced {
            bigfoot_obs::trace::end(&QUERY_TNAME);
        }
    }
}
