//! The knowledge base: decides entailment of boolean, aliasing, and
//! modular-arithmetic facts.
//!
//! This is the reproduction's stand-in for the paper's use of Z3 (§3.4,
//! §5). The check-placement analysis only ever asks questions of a very
//! restricted shape — linear inequalities over locals, reference equality
//! under heap-alias assumptions, and stride/divisibility side conditions —
//! so a small, complete-enough decision procedure covers it:
//!
//! * linear arithmetic: Fourier–Motzkin refutation over [`Lin`] facts;
//! * reference equality: union-find plus congruence closure over field and
//!   element alias facts (`x = y.f`, `x = y[i]`);
//! * divisibility: congruence facts `e ≡ 0 (mod m)` matched up to constant
//!   differences.
//!
//! All answers are conservative: "don't know" means *not entailed*, which
//! at worst places a redundant check (never an unsound one).

use crate::lin::{linearize, Atom, Lin};
use bigfoot_bfj::{Binop, Expr, Sym, Unop};
use std::collections::HashMap;

/// Caps for the Fourier–Motzkin elimination, beyond which the engine gives
/// up (conservatively answering "not entailed").
const FM_MAX_ROWS: usize = 600;
const FM_MAX_ATOMS: usize = 24;

/// A heap-alias right-hand side: what a variable was loaded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasRhs {
    /// `x = base.field`
    Field {
        /// The object variable.
        base: Sym,
        /// The field name.
        field: Sym,
    },
    /// `x = base[index]`
    Elem {
        /// The array variable.
        base: Sym,
        /// The normalized index.
        index: Lin,
    },
}

/// A set of assumed facts with entailment queries.
///
/// # Examples
///
/// ```
/// use bigfoot_entail::Kb;
/// use bigfoot_bfj::{Expr, Sym};
///
/// let mut kb = Kb::new();
/// // assume i = j
/// kb.assume(&Expr::Binop(
///     bigfoot_bfj::Binop::Eq,
///     Box::new(Expr::var("i")),
///     Box::new(Expr::var("j")),
/// ));
/// // then i + 1 > j holds
/// let q = Expr::Binop(
///     bigfoot_bfj::Binop::Gt,
///     Box::new(Expr::add(Expr::var("i"), Expr::Int(1))),
///     Box::new(Expr::var("j")),
/// );
/// assert!(kb.entails(&q));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Kb {
    /// Inequality facts, each meaning `lin >= 0`.
    ineqs: Vec<Lin>,
    /// Congruence facts, each meaning `lin ≡ 0 (mod m)`.
    congs: Vec<(Lin, i64)>,
    /// Union-find over reference variables.
    parent: HashMap<Sym, Sym>,
    /// Alias facts `lhs = rhs`.
    aliases: Vec<(Sym, AliasRhs)>,
    /// Whether the congruence closure is up to date.
    closed: bool,
    /// Cached result of the inconsistency check.
    inconsistent: Option<bool>,
    /// Fact-set fingerprint: bumped by every public assumption, so caches
    /// below can tell whether the knowledge base has changed since they
    /// were filled. Canonicalization is stable within one generation (the
    /// congruence closure is idempotent between assumptions).
    generation: u64,
    /// Memoized [`Kb::proves_nonneg`] verdicts for the current generation,
    /// keyed by the canonicalized query.
    memo: HashMap<Lin, bool>,
    memo_gen: u64,
    /// Canonicalized inequality rows, rebuilt once per generation instead
    /// of on every query.
    canon_rows: Vec<Lin>,
    canon_gen: Option<u64>,
    /// Scratch row storage reused across Fourier–Motzkin queries.
    fm_scratch: Vec<Lin>,
}

impl Kb {
    /// An empty knowledge base (entails only tautologies).
    pub fn new() -> Kb {
        Kb::default()
    }

    /// Assumes a boolean expression. Conjunctions are split; comparisons
    /// become linear facts; `e % m == 0` becomes a congruence fact;
    /// disjunctions and other unhandled forms are soundly ignored.
    pub fn assume(&mut self, e: &Expr) {
        self.generation = self.generation.wrapping_add(1);
        match e {
            Expr::Binop(Binop::And, a, b) => {
                self.assume(a);
                self.assume(b);
            }
            Expr::Unop(Unop::Not, inner) => {
                if let Some(neg) = negate_cmp(inner) {
                    self.assume(&neg);
                }
            }
            Expr::Binop(op, a, b) if op.is_comparison() => {
                self.assume_cmp(*op, a, b);
            }
            _ => {}
        }
    }

    fn assume_cmp(&mut self, op: Binop, a: &Expr, b: &Expr) {
        // Recognize `x % m == c` and `(x - l) % m == 0` as congruences.
        if op == Binop::Eq {
            if let (Expr::Binop(Binop::Mod, inner, m), Expr::Int(c)) = (a, b) {
                if let (Some(li), Expr::Int(m)) = (linearize(inner), m.as_ref()) {
                    if *m > 0 {
                        self.congs.push((li.offset(-*c), *m));
                        return;
                    }
                }
            }
            if let (Expr::Int(c), Expr::Binop(Binop::Mod, inner, m)) = (a, b) {
                if let (Some(li), Expr::Int(m)) = (linearize(inner), m.as_ref()) {
                    if *m > 0 {
                        self.congs.push((li.offset(-*c), *m));
                        return;
                    }
                }
            }
            // Reference equality between variables.
            if let (Expr::Var(x), Expr::Var(y)) = (a, b) {
                self.union(*x, *y);
            }
        }
        let (Some(la), Some(lb)) = (linearize(a), linearize(b)) else {
            return;
        };
        self.inconsistent = None;
        match op {
            // a == b  →  a-b >= 0 ∧ b-a >= 0
            Binop::Eq => {
                self.ineqs.push(la.sub(&lb));
                self.ineqs.push(lb.sub(&la));
            }
            Binop::Le => self.ineqs.push(lb.sub(&la)),
            Binop::Lt => self.ineqs.push(lb.sub(&la).offset(-1)),
            Binop::Ge => self.ineqs.push(la.sub(&lb)),
            Binop::Gt => self.ineqs.push(la.sub(&lb).offset(-1)),
            Binop::Ne => {} // disjunction: ignored
            _ => {}
        }
    }

    /// Assumes a heap-alias fact `x = rhs` (recorded on field/array reads).
    pub fn assume_alias(&mut self, x: Sym, rhs: AliasRhs) {
        self.generation = self.generation.wrapping_add(1);
        self.aliases.push((x, rhs));
        self.closed = false;
    }

    /// Assumes `x` and `y` hold the same value (copy or rename). Records
    /// both the numeric equality and the reference equality.
    pub fn assume_var_eq(&mut self, x: Sym, y: Sym) {
        self.generation = self.generation.wrapping_add(1);
        let lx = Lin::var(x);
        let ly = Lin::var(y);
        self.ineqs.push(lx.sub(&ly));
        self.ineqs.push(ly.sub(&lx));
        self.union(x, y);
    }

    // ---------------- reference equality ----------------

    fn find(&self, x: Sym) -> Sym {
        let mut cur = x;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    fn union(&mut self, x: Sym, y: Sym) {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx != ry {
            self.parent.insert(rx, ry);
            self.closed = false;
        }
    }

    /// Runs congruence closure over the alias facts: two variables loaded
    /// from the same field of equal objects (or the same index of equal
    /// arrays) are themselves equal references.
    fn close(&mut self) {
        if self.closed {
            return;
        }
        loop {
            let mut changed = false;
            let mut by_key: HashMap<(Sym, Option<Sym>, Option<Lin>), Sym> = HashMap::new();
            let aliases = self.aliases.clone();
            for (lhs, rhs) in &aliases {
                let key = match rhs {
                    AliasRhs::Field { base, field } => (self.find(*base), Some(*field), None),
                    AliasRhs::Elem { base, index } => {
                        (self.find(*base), None, Some(self.canon_lin(index)))
                    }
                };
                match by_key.get(&key) {
                    Some(&prev) => {
                        if self.find(prev) != self.find(*lhs) {
                            self.union(prev, *lhs);
                            changed = true;
                        }
                    }
                    None => {
                        by_key.insert(key, *lhs);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.closed = true;
    }

    /// Canonicalizes the atoms of a linear term against the union-find.
    fn canon_lin(&self, l: &Lin) -> Lin {
        let mut out = Lin::constant(l.konst);
        for (a, &c) in &l.terms {
            let a = match a {
                Atom::Var(x) => Atom::Var(self.find(*x)),
                Atom::Len(x) => Atom::Len(self.find(*x)),
                Atom::Opaque(s) => Atom::Opaque(*s),
            };
            let mut t = Lin::atom(a).scale(c);
            t.konst = 0;
            out = out.add(&t);
        }
        out
    }

    /// True if `x` and `y` provably reference the same object/array.
    pub fn refs_equal(&mut self, x: Sym, y: Sym) -> bool {
        if x == y {
            return true;
        }
        bigfoot_obs::count!("entail.query.refs_equal");
        let _q = crate::obs::QueryGuard::enter();
        self.close();
        self.find(x) == self.find(y)
    }

    // ---------------- arithmetic entailment ----------------

    /// Normalizes an expression with union-find canonicalization.
    pub fn lin(&mut self, e: &Expr) -> Option<Lin> {
        self.close();
        linearize(e).map(|l| self.canon_lin(&l))
    }

    /// Rebuilds the canonicalized inequality rows if any assumption landed
    /// since they were last built. Requires the closure to be up to date.
    fn refresh_canon_rows(&mut self) {
        if self.canon_gen == Some(self.generation) {
            return;
        }
        let mut rows = std::mem::take(&mut self.canon_rows);
        rows.clear();
        rows.extend(self.ineqs.iter().map(|f| self.canon_lin(f)));
        self.canon_rows = rows;
        self.canon_gen = Some(self.generation);
    }

    /// Proves `l >= 0` from the assumed facts.
    ///
    /// Verdicts are memoized per canonicalized query until the next
    /// assumption: the placement analysis re-asks the same bounds queries
    /// for every path flowing through a block, and the fact set only
    /// changes at assumption points.
    pub fn proves_nonneg(&mut self, l: &Lin) -> bool {
        let _q = crate::obs::QueryGuard::enter();
        self.close();
        let q = self.canon_lin(l);
        if let Some(c) = q.as_const() {
            if c >= 0 {
                return true;
            }
            // Fall through: inconsistent facts entail everything.
        }
        if self.memo_gen != self.generation {
            self.memo.clear();
            self.memo_gen = self.generation;
        }
        if let Some(&v) = self.memo.get(&q) {
            bigfoot_obs::count!("entail.cache.hit");
            return v;
        }
        bigfoot_obs::count!("entail.cache.miss");
        self.refresh_canon_rows();
        // Refute facts ∧ (q <= -1), i.e. facts ∧ (-q - 1 >= 0).
        let mut rows = std::mem::take(&mut self.fm_scratch);
        rows.clear();
        rows.extend_from_slice(&self.canon_rows);
        rows.push(q.scale(-1).offset(-1));
        let v = fm_infeasible(&mut rows);
        self.fm_scratch = rows;
        self.memo.insert(q, v);
        v
    }

    /// Proves `a <= b`.
    pub fn proves_le(&mut self, a: &Lin, b: &Lin) -> bool {
        self.proves_nonneg(&b.sub(a))
    }

    /// True if the assumed facts are contradictory (a statically dead
    /// context, which entails everything).
    pub fn is_inconsistent(&mut self) -> bool {
        if let Some(v) = self.inconsistent {
            return v;
        }
        self.close();
        self.refresh_canon_rows();
        let mut rows = std::mem::take(&mut self.fm_scratch);
        rows.clear();
        rows.extend_from_slice(&self.canon_rows);
        let v = fm_infeasible(&mut rows);
        self.fm_scratch = rows;
        self.inconsistent = Some(v);
        v
    }

    /// Proves `a == b`.
    pub fn proves_eq(&mut self, a: &Lin, b: &Lin) -> bool {
        let d = a.sub(b);
        if self.canon_const(&d) == Some(0) {
            return true;
        }
        self.proves_nonneg(&d) && self.proves_nonneg(&d.scale(-1))
    }

    fn canon_const(&mut self, l: &Lin) -> Option<i64> {
        self.close();
        self.canon_lin(l).as_const()
    }

    /// Proves `l ≡ 0 (mod m)`.
    pub fn proves_cong(&mut self, l: &Lin, m: i64) -> bool {
        if m <= 1 {
            return true;
        }
        let _q = crate::obs::QueryGuard::enter();
        self.close();
        let q = self.canon_lin(l);
        if let Some(c) = q.as_const() {
            return c.rem_euclid(m) == 0;
        }
        // Equality facts may pin the query to a constant (e.g. on loop
        // entry, `x - e0` is exactly 0); probe small multiples of m.
        if self.pins_to_multiple(&q, m) {
            return true;
        }
        let congs = self.congs.clone();
        for (f, fm) in &congs {
            if fm % m != 0 {
                continue;
            }
            let f = self.canon_lin(f);
            // q ≡ f (mod m) if q - f is a constant multiple of m (either
            // syntactically or via the linear facts).
            for d in [q.sub(&f), q.add(&f)] {
                match d.as_const() {
                    Some(c) => {
                        if c.rem_euclid(m) == 0 {
                            return true;
                        }
                    }
                    None => {
                        if self.pins_to_multiple(&d, m) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// True if the linear facts pin `q` to `k·m` for some small `k`.
    fn pins_to_multiple(&mut self, q: &Lin, m: i64) -> bool {
        for k in -4i64..=4 {
            if self.proves_eq(q, &Lin::constant(k * m)) {
                return true;
            }
        }
        false
    }

    /// Decides a boolean query expression from the assumed facts.
    ///
    /// Handles conjunction, comparison, and negated comparison queries;
    /// anything else is conservatively *not* entailed.
    pub fn entails(&mut self, e: &Expr) -> bool {
        bigfoot_obs::count!("entail.query.entails");
        let _q = crate::obs::QueryGuard::enter();
        match e {
            Expr::Bool(true) => true,
            Expr::Binop(Binop::And, a, b) => self.entails(a) && self.entails(b),
            Expr::Unop(Unop::Not, inner) => match negate_cmp(inner) {
                Some(neg) => self.entails(&neg),
                None => false,
            },
            Expr::Binop(op, a, b) if op.is_comparison() => {
                // Congruence queries `e % m == 0`.
                if *op == Binop::Eq {
                    if let (Expr::Binop(Binop::Mod, inner, m), Expr::Int(c)) = (&**a, &**b) {
                        if let (Some(li), Expr::Int(m)) = (linearize(inner), m.as_ref()) {
                            if *m > 0 {
                                return self.proves_cong(&li.offset(-*c), *m);
                            }
                        }
                    }
                    if let (Expr::Var(x), Expr::Var(y)) = (&**a, &**b) {
                        if self.refs_equal(*x, *y) {
                            return true;
                        }
                    }
                }
                let (Some(la), Some(lb)) = (linearize(a), linearize(b)) else {
                    return false;
                };
                match op {
                    Binop::Eq => self.proves_eq(&la, &lb),
                    Binop::Le => self.proves_le(&la, &lb),
                    Binop::Lt => self.proves_nonneg(&lb.sub(&la).offset(-1)),
                    Binop::Ge => self.proves_le(&lb, &la),
                    Binop::Gt => self.proves_nonneg(&la.sub(&lb).offset(-1)),
                    Binop::Ne => {
                        self.proves_nonneg(&la.sub(&lb).offset(-1))
                            || self.proves_nonneg(&lb.sub(&la).offset(-1))
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

/// Negates a comparison: `!(a < b)` → `a >= b`, etc.
fn negate_cmp(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Binop(op, a, b) if op.is_comparison() => {
            let flipped = match op {
                Binop::Eq => Binop::Ne,
                Binop::Ne => Binop::Eq,
                Binop::Lt => Binop::Ge,
                Binop::Le => Binop::Gt,
                Binop::Gt => Binop::Le,
                Binop::Ge => Binop::Lt,
                _ => return None,
            };
            Some(Expr::Binop(flipped, a.clone(), b.clone()))
        }
        Expr::Unop(Unop::Not, inner) => Some((**inner).clone()),
        Expr::Bool(b) => Some(Expr::Bool(!b)),
        _ => None,
    }
}

/// Fourier–Motzkin: returns true if the conjunction of `rows` (each
/// `lin >= 0`) is infeasible over the rationals.
///
/// Rational infeasibility implies integer infeasibility, so `true` is
/// always a sound "contradiction" answer. Exceeding the row/atom caps
/// returns `false` (feasible / unknown).
///
/// `rows` is left in an unspecified state; the caller keeps the buffer so
/// its capacity is reused across queries.
fn fm_infeasible(rows: &mut Vec<Lin>) -> bool {
    // Quick constant check.
    if rows.iter().any(|r| r.is_const() && r.konst < 0) {
        return true;
    }
    let mut atoms: Vec<Atom> = {
        let mut s: Vec<Atom> = rows.iter().flat_map(|r| r.atoms()).collect();
        s.sort();
        s.dedup();
        s
    };
    if atoms.len() > FM_MAX_ATOMS {
        return false;
    }
    // Partition buffers reused across elimination rounds.
    let mut pos: Vec<(i64, Lin)> = Vec::new(); // c > 0:  c·x + r >= 0  →  x >= -r/c
    let mut neg: Vec<(i64, Lin)> = Vec::new(); // c < 0 rows
    let mut rest: Vec<Lin> = Vec::new();
    while let Some(atom) = atoms.pop() {
        pos.clear();
        neg.clear();
        rest.clear();
        for r in rows.drain(..) {
            match r.terms.get(&atom).copied().unwrap_or(0) {
                0 => rest.push(r),
                c if c > 0 => pos.push((c, r)),
                c => neg.push((-c, r)),
            }
        }
        // Combine each (pos, neg) pair, eliminating `atom`.
        for (cp, rp) in &pos {
            for (cn, rn) in &neg {
                // cp·x + rp' >= 0 and -cn·x + rn' >= 0
                // → cn·rp + cp·rn >= 0 (x eliminated)
                let combined = rp.scale(*cn).add(&rn.scale(*cp));
                debug_assert!(combined.terms.get(&atom).copied().unwrap_or(0) == 0);
                if combined.is_const() && combined.konst < 0 {
                    return true;
                }
                if !combined.is_const() {
                    rest.push(combined);
                }
            }
        }
        if rest.len() > FM_MAX_ROWS {
            return false;
        }
        std::mem::swap(rows, &mut rest);
        // Drop rows mentioning already-eliminated atoms? None remain by
        // construction: we eliminate from the full current set each round.
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let p = bigfoot_bfj::parse_program(&format!("main {{ q$q = {src}; }}")).unwrap();
        match &p.main.stmts[0].kind {
            bigfoot_bfj::StmtKind::Assign { e, .. } => e.clone(),
            _ => panic!("expected assign"),
        }
    }

    fn kb_with(facts: &[&str]) -> Kb {
        let mut kb = Kb::new();
        for f in facts {
            kb.assume(&expr(f));
        }
        kb
    }

    #[test]
    fn basic_transitivity() {
        let mut kb = kb_with(&["a <= b", "b <= c"]);
        assert!(kb.entails(&expr("a <= c")));
        assert!(!kb.entails(&expr("c <= a")));
    }

    #[test]
    fn equality_substitution() {
        let mut kb = kb_with(&["i == j", "i >= 0"]);
        assert!(kb.entails(&expr("j >= 0")));
        assert!(kb.entails(&expr("j + 1 > 0")));
    }

    #[test]
    fn paper_example_anticipated() {
        // {i < 10} ⊢ bounds for x[0..i] ⊆ x[0..10]: i <= 10.
        let mut kb = kb_with(&["i < 10"]);
        assert!(kb.entails(&expr("i <= 10")));
    }

    #[test]
    fn strict_inequalities_are_integer_tight() {
        let mut kb = kb_with(&["i < j"]);
        assert!(kb.entails(&expr("i + 1 <= j")));
    }

    #[test]
    fn unknowns_are_not_entailed() {
        let mut kb = kb_with(&["a <= b"]);
        assert!(!kb.entails(&expr("a == b")));
        assert!(!kb.entails(&expr("x >= 0")));
    }

    #[test]
    fn negated_comparisons() {
        let mut kb = kb_with(&["!(i < 0)"]);
        assert!(kb.entails(&expr("i >= 0")));
        assert!(kb.entails(&expr("!(i < 0)")));
    }

    #[test]
    fn congruence_facts() {
        let mut kb = kb_with(&["i % 2 == 0"]);
        assert!(kb.entails(&expr("i % 2 == 0")));
        assert!(kb.entails(&expr("(i + 2) % 2 == 0")));
        assert!(kb.entails(&expr("(i + 4) % 2 == 0")));
        assert!(!kb.entails(&expr("(i + 1) % 2 == 0")));
        assert!(!kb.entails(&expr("i % 3 == 0")));
    }

    #[test]
    fn reference_congruence_closure() {
        // x = a.f, y = a.f  ⇒  x == y (the §5 alias example).
        let mut kb = Kb::new();
        let (x, y, a, f) = (
            Sym::intern("x"),
            Sym::intern("y"),
            Sym::intern("a"),
            Sym::intern("f"),
        );
        kb.assume_alias(x, AliasRhs::Field { base: a, field: f });
        kb.assume_alias(y, AliasRhs::Field { base: a, field: f });
        assert!(kb.refs_equal(x, y));
        assert!(!kb.refs_equal(x, a));
    }

    #[test]
    fn nested_congruence_via_union() {
        // b = a, x = a.f, y = b.f  ⇒  x == y.
        let mut kb = Kb::new();
        let (a, b, x, y, f) = (
            Sym::intern("ca"),
            Sym::intern("cb"),
            Sym::intern("cx"),
            Sym::intern("cy"),
            Sym::intern("cf"),
        );
        kb.assume_var_eq(b, a);
        kb.assume_alias(x, AliasRhs::Field { base: a, field: f });
        kb.assume_alias(y, AliasRhs::Field { base: b, field: f });
        assert!(kb.refs_equal(x, y));
    }

    #[test]
    fn element_alias_congruence() {
        // x = a[i], y = a[j], i == j  ⇒  x == y.
        let mut kb = kb_with(&["i == j"]);
        let (x, y, a) = (Sym::intern("ex"), Sym::intern("ey"), Sym::intern("ea"));
        let i = linearize(&expr("i")).unwrap();
        let j = linearize(&expr("j")).unwrap();
        kb.assume_var_eq(Sym::intern("i"), Sym::intern("j"));
        kb.assume_alias(x, AliasRhs::Elem { base: a, index: i });
        kb.assume_alias(y, AliasRhs::Elem { base: a, index: j });
        assert!(kb.refs_equal(x, y));
    }

    #[test]
    fn opaque_terms_match_syntactically() {
        let mut kb = kb_with(&["lo == n / 2"]);
        assert!(kb.entails(&expr("lo == n / 2")));
        assert!(!kb.entails(&expr("lo == n / 3")));
    }

    #[test]
    fn length_facts() {
        let mut kb = kb_with(&["n == a.length", "i < n"]);
        assert!(kb.entails(&expr("i < a.length")));
    }

    #[test]
    fn infeasible_combination_detected() {
        let mut kb = kb_with(&["x >= 5", "x <= 3"]);
        // From contradictory facts everything follows.
        assert!(kb.entails(&expr("0 == 1")));
    }

    #[test]
    fn ne_entailed_by_strict_order() {
        let mut kb = kb_with(&["a < b"]);
        assert!(kb.entails(&expr("a != b")));
    }
}
