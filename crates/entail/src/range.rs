//! Symbolic strided-range reasoning: subsumption, union coverage, and the
//! §4 coalescing step.
//!
//! Exactness matters in two different ways here:
//!
//! * [`covered_by_union`] may *under*-approximate (answering "not covered"
//!   merely places an extra check), and
//! * [`coalesce`] must be *exact* — the coalesced range replaces the
//!   original paths in an emitted `check(C)`, so an over-approximation
//!   would check unaccessed locations and could raise false alarms, while
//!   an under-approximation could miss races. Every merge rule below
//!   preserves the exact index set, mirroring the paper's combinatorial
//!   search over bounds and strides.

use crate::kb::Kb;
use crate::lin::Lin;
use bigfoot_bfj::{ConcreteRange, Range};

/// A strided range with symbolic (linear) bounds and a constant stride.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymRange {
    /// Inclusive lower bound.
    pub lo: Lin,
    /// Exclusive upper bound.
    pub hi: Lin,
    /// Positive stride.
    pub step: i64,
}

impl SymRange {
    /// The singleton range `{idx}`.
    pub fn singleton(idx: Lin) -> SymRange {
        let hi = idx.offset(1);
        SymRange {
            lo: idx,
            hi,
            step: 1,
        }
    }

    /// Builds from a syntactic [`Range`], normalizing the bounds.
    ///
    /// Returns `None` for non-positive strides rather than silently
    /// clamping them to 1: a clamped `a[lo..hi:0]` would denote a
    /// *different* index set than the (malformed) input, and a `None`
    /// here merely makes the analysis keep the original per-access
    /// checks. The parser already rejects non-positive strides in
    /// surface syntax; this guards programmatically built ASTs.
    pub fn from_ast(r: &Range) -> Option<SymRange> {
        if r.step <= 0 {
            return None;
        }
        Some(SymRange {
            lo: crate::lin::linearize(&r.lo)?,
            hi: crate::lin::linearize(&r.hi)?,
            step: r.step,
        })
    }

    /// Converts back to a syntactic [`Range`].
    pub fn to_ast(&self) -> Range {
        Range {
            lo: self.lo.to_expr(),
            hi: self.hi.to_expr(),
            step: self.step,
        }
    }

    /// Evaluates against constant bounds, if both are constants.
    pub fn as_concrete(&self) -> Option<ConcreteRange> {
        Some(ConcreteRange {
            lo: self.lo.as_const()?,
            hi: self.hi.as_const()?,
            step: self.step,
        })
    }

    /// True if `self` denotes exactly one statically-known singleton form
    /// `x..x+1:1`.
    pub fn is_singleton_shape(&self) -> bool {
        self.step == 1 && self.hi.sub(&self.lo).as_const() == Some(1)
    }

    /// True if the range is provably empty under `kb`.
    pub fn provably_empty(&self, kb: &mut Kb) -> bool {
        kb.proves_le(&self.hi, &self.lo)
    }

    /// Applies a substitution to both bounds (used by history renaming).
    pub fn map_bounds(&self, f: impl Fn(&Lin) -> Lin) -> SymRange {
        SymRange {
            lo: f(&self.lo),
            hi: f(&self.hi),
            step: self.step,
        }
    }
}

impl std::fmt::Display for SymRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_singleton_shape() {
            write!(f, "{}", self.lo)
        } else if self.step == 1 {
            write!(f, "{}..{}", self.lo, self.hi)
        } else {
            write!(f, "{}..{}:{}", self.lo, self.hi, self.step)
        }
    }
}

/// True if every index of `small` is provably an index of `big`.
pub fn subsumes(kb: &mut Kb, big: &SymRange, small: &SymRange) -> bool {
    bigfoot_obs::count!("entail.query.subsumes");
    let _q = crate::obs::QueryGuard::enter();
    if small.provably_empty(kb) {
        return true;
    }
    let bounds_ok = kb.proves_le(&big.lo, &small.lo) && kb.proves_le(&small.hi, &big.hi);
    if !bounds_ok {
        return false;
    }
    if big.step == 1 {
        return true;
    }
    // A singleton only needs its one index on big's grid.
    if small.is_singleton_shape() {
        return kb.proves_cong(&small.lo.sub(&big.lo), big.step);
    }
    // Grid compatibility: small's stride must be a multiple of big's, and
    // the offsets must be congruent.
    small.step % big.step == 0 && kb.proves_cong(&small.lo.sub(&big.lo), big.step)
}

/// True if every index of `query` is provably covered by the union of
/// `facts`.
///
/// Uses single-range subsumption first, then a greedy symbolic chain that
/// walks a "covered up to" frontier across the facts. Sound but
/// incomplete: a `false` answer merely forces an extra check.
pub fn covered_by_union(kb: &mut Kb, query: &SymRange, facts: &[SymRange]) -> bool {
    bigfoot_obs::count!("entail.query.covered_by_union");
    let _q = crate::obs::QueryGuard::enter();
    if query.provably_empty(kb) {
        return true;
    }
    // Cheap pass first: a single fact may already subsume the query.
    for f in facts {
        if subsumes(kb, f, query) {
            return true;
        }
    }
    // Exact pairwise merging: a block plus its adjacent singleton fuse
    // into one range, which keeps the greedy frontier below from
    // committing to a poor witness.
    let facts = merge_all(kb, facts);
    let facts = &facts[..];
    for f in facts {
        if subsumes(kb, f, query) {
            return true;
        }
    }
    // Greedy frontier chain.
    let mut pos = query.lo.clone();
    let mut used = vec![false; facts.len()];
    for _round in 0..facts.len() {
        if kb.proves_le(&query.hi, &pos) {
            return true;
        }
        let mut advanced = false;
        for (i, f) in facts.iter().enumerate() {
            if used[i] {
                continue;
            }
            // Candidate 1: f is a contiguous or stride-compatible block
            // starting at or before the frontier.
            let grid_ok = match f.step {
                1 => query.step == 1,
                k => {
                    query.step == k
                        && kb.proves_cong(&pos.sub(&f.lo), k)
                        && kb.proves_cong(&f.lo.sub(&query.lo), k)
                }
            };
            if grid_ok && kb.proves_le(&f.lo, &pos) && kb.proves_le(&pos, &f.hi) {
                // Frontier advances (possibly weakly — a fact whose range
                // may be empty still moves the proof along, e.g. a[0..i')
                // with i' possibly 0). For strided facts whose last grid
                // point is provably hi-1, the next *uncovered* grid point
                // is hi-1+k, not hi.
                pos = if f.step > 1 && kb.proves_cong(&f.hi.offset(-1).sub(&f.lo), f.step) {
                    f.hi.offset(f.step - 1)
                } else {
                    f.hi.clone()
                };
                used[i] = true;
                advanced = true;
                break;
            }
            // Candidate 2: f is a singleton exactly at the frontier, on the
            // query grid.
            if f.is_singleton_shape()
                && kb.proves_eq(&f.lo, &pos)
                && kb.proves_cong(&pos.sub(&query.lo), query.step)
            {
                pos = pos.offset(query.step);
                used[i] = true;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    kb.proves_le(&query.hi, &pos)
}

/// Merges ranges pairwise (exactly) until no further merge applies.
fn merge_all(kb: &mut Kb, facts: &[SymRange]) -> Vec<SymRange> {
    let mut work: Vec<SymRange> = facts.to_vec();
    loop {
        let mut merged = None;
        'outer: for i in 0..work.len() {
            for j in (i + 1)..work.len() {
                if let Some(m) = merge_pair(kb, &work[i], &work[j]) {
                    merged = Some((i, j, m));
                    break 'outer;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                work.remove(j);
                work.remove(i);
                work.push(m);
            }
            None => return work,
        }
    }
}

/// Attempts to merge two ranges into one covering *exactly* their union.
fn merge_pair(kb: &mut Kb, a: &SymRange, b: &SymRange) -> Option<SymRange> {
    // Drop provably-empty sides.
    if a.provably_empty(kb) {
        return Some(b.clone());
    }
    if b.provably_empty(kb) {
        return Some(a.clone());
    }
    // Subsumption (exact: union = bigger range).
    if subsumes(kb, a, b) {
        return Some(a.clone());
    }
    if subsumes(kb, b, a) {
        return Some(b.clone());
    }
    // Order: try both directions for asymmetric rules.
    merge_directed(kb, a, b).or_else(|| merge_directed(kb, b, a))
}

/// Merge rules assuming `a` comes "first".
fn merge_directed(kb: &mut Kb, a: &SymRange, b: &SymRange) -> Option<SymRange> {
    // Contiguous adjacency / overlap: [lo1,hi1) ∪ [lo2,hi2) with
    // lo1 <= lo2 <= hi1 <= hi2 is exactly [lo1,hi2).
    if a.step == 1 && b.step == 1 {
        if kb.proves_le(&a.lo, &b.lo) && kb.proves_le(&b.lo, &a.hi) && kb.proves_le(&a.hi, &b.hi) {
            return Some(SymRange {
                lo: a.lo.clone(),
                hi: b.hi.clone(),
                step: 1,
            });
        }
        return None;
    }
    // Strided extension by a singleton at the exact next grid point:
    // [lo..hi:k] with hi ≡ lo (mod k)? The next grid point after the last
    // covered index is `hi` itself only when hi is on the grid; we require
    // b = {x} with x == a.hi and x ≡ a.lo (mod k). Then the union is
    // exactly [lo .. x+1 : k] — its indices are a's plus x.
    if a.step > 1 && b.is_singleton_shape() {
        let k = a.step;
        if kb.proves_eq(&b.lo, &a.hi)
            && kb.proves_cong(&b.lo.sub(&a.lo), k)
            && kb.proves_le(&a.lo, &b.lo)
        {
            return Some(SymRange {
                lo: a.lo.clone(),
                hi: b.lo.offset(1),
                step: k,
            });
        }
    }
    // Same-stride adjacency on a shared grid: [lo1..m:k] ∪ [m..hi2:k] with
    // m ≡ lo1 (mod k) is exactly [lo1..hi2:k].
    if a.step == b.step && a.step > 1 {
        let k = a.step;
        if kb.proves_eq(&a.hi, &b.lo)
            && kb.proves_cong(&b.lo.sub(&a.lo), k)
            && kb.proves_le(&a.lo, &b.lo)
            && kb.proves_le(&b.lo, &b.hi)
        {
            return Some(SymRange {
                lo: a.lo.clone(),
                hi: b.hi.clone(),
                step: k,
            });
        }
    }
    None
}

/// Coalesces a set of ranges into a single range covering *exactly* their
/// union, per the paper's §4 post-analysis coalescing. Returns `None` when
/// no exact single-range form is found (the caller then keeps the original
/// paths).
pub fn coalesce(kb: &mut Kb, ranges: &[SymRange]) -> Option<SymRange> {
    bigfoot_obs::count!("entail.query.coalesce");
    let _q = crate::obs::QueryGuard::enter();
    match ranges.len() {
        0 => return None,
        1 => return Some(ranges[0].clone()),
        _ => {}
    }
    // Residue-class fusion: exactly k ranges of stride k whose lower bounds
    // are lo, lo+1, …, lo+k-1 and whose upper bounds coincide fuse into the
    // contiguous range [lo, hi).
    if let Some(fused) = fuse_residues(kb, ranges) {
        return Some(fused);
    }
    // Pairwise merging to a fixed point.
    let mut work: Vec<SymRange> = ranges.to_vec();
    while work.len() > 1 {
        let mut merged = None;
        'outer: for i in 0..work.len() {
            for j in (i + 1)..work.len() {
                if let Some(m) = merge_pair(kb, &work[i], &work[j]) {
                    merged = Some((i, j, m));
                    break 'outer;
                }
            }
        }
        let (i, j, m) = merged?;
        work.remove(j);
        work.remove(i);
        work.push(m);
    }
    work.pop()
}

fn fuse_residues(kb: &mut Kb, ranges: &[SymRange]) -> Option<SymRange> {
    let k = ranges.first()?.step;
    if k <= 1 || ranges.len() != k as usize {
        return None;
    }
    if !ranges.iter().all(|r| r.step == k) {
        return None;
    }
    // Find the base range (smallest lo): one whose lo all others offset.
    for base in ranges {
        let mut offsets_seen = vec![false; k as usize];
        let mut ok = true;
        for r in ranges {
            let d = r.lo.sub(&base.lo).as_const();
            match d {
                Some(d) if d >= 0 && d < k => {
                    if offsets_seen[d as usize] {
                        ok = false;
                        break;
                    }
                    offsets_seen[d as usize] = true;
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !offsets_seen.iter().all(|&b| b) {
            continue;
        }
        // All upper bounds must provably coincide for exactness: the union
        // of [lo+d .. hi : k] over d in 0..k is [lo .. hi) exactly when
        // each class is cut at the same hi.
        let hi = &base.hi;
        let his_equal = {
            let mut all = true;
            for r in ranges {
                let rhi = r.hi.clone();
                if !kb.proves_eq(&rhi, hi) {
                    all = false;
                    break;
                }
            }
            all
        };
        if his_equal {
            return Some(SymRange {
                lo: base.lo.clone(),
                hi: base.hi.clone(),
                step: 1,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::linearize;
    use bigfoot_bfj::{Expr, StmtKind};

    fn e(src: &str) -> Expr {
        let p = bigfoot_bfj::parse_program(&format!("main {{ r$r = {src}; }}")).unwrap();
        match &p.main.stmts[0].kind {
            StmtKind::Assign { e, .. } => e.clone(),
            _ => unreachable!(),
        }
    }

    fn lin(src: &str) -> Lin {
        linearize(&e(src)).unwrap()
    }

    fn rng(lo: &str, hi: &str, step: i64) -> SymRange {
        SymRange {
            lo: lin(lo),
            hi: lin(hi),
            step,
        }
    }

    fn kb_with(facts: &[&str]) -> Kb {
        let mut kb = Kb::new();
        for f in facts {
            kb.assume(&e(f));
        }
        kb
    }

    #[test]
    fn from_ast_rejects_non_positive_strides() {
        use bigfoot_bfj::Expr;
        for step in [0, -1, -7] {
            let r = Range {
                lo: Expr::Int(0),
                hi: Expr::Int(8),
                step,
            };
            assert!(
                SymRange::from_ast(&r).is_none(),
                "step {step} must be rejected"
            );
        }
        let ok = Range {
            lo: Expr::Int(0),
            hi: Expr::Int(8),
            step: 2,
        };
        assert_eq!(SymRange::from_ast(&ok).unwrap().step, 2);
    }

    #[test]
    fn contiguous_subsumption() {
        let mut kb = kb_with(&["lo >= 0", "hi <= n"]);
        assert!(subsumes(&mut kb, &rng("0", "n", 1), &rng("lo", "hi", 1)));
        assert!(!subsumes(&mut kb, &rng("lo", "hi", 1), &rng("0", "n", 1)));
    }

    #[test]
    fn strided_subsumption_needs_alignment() {
        let mut kb = Kb::new();
        // evens within evens: ok
        assert!(subsumes(&mut kb, &rng("0", "100", 2), &rng("2", "50", 2)));
        // odds within evens: no
        assert!(!subsumes(&mut kb, &rng("0", "100", 2), &rng("1", "50", 2)));
        // stride 4 within stride 2, aligned: ok
        assert!(subsumes(&mut kb, &rng("0", "100", 2), &rng("4", "60", 4)));
        // stride 3 within stride 2: no
        assert!(!subsumes(&mut kb, &rng("0", "100", 2), &rng("0", "60", 3)));
    }

    #[test]
    fn empty_ranges_are_subsumed() {
        let mut kb = kb_with(&["x >= y"]);
        assert!(subsumes(&mut kb, &rng("0", "1", 1), &rng("x", "y", 1)));
    }

    #[test]
    fn loop_invariant_union_coverage() {
        // Fig. 6(b): history {a[0..i']∪{i'}} covers the rewritten invariant
        // a[0..i] given i = i' + 1.
        let mut kb = kb_with(&["i == ip + 1", "ip >= 0"]);
        let query = rng("0", "i", 1);
        let facts = [rng("0", "ip", 1), SymRange::singleton(lin("ip"))];
        assert!(covered_by_union(&mut kb, &query, &facts));
    }

    #[test]
    fn strided_loop_union_coverage() {
        // stride-2 loop: {a[0..ip:2]} ∪ {ip} covers a[0..i:2] when
        // i = ip + 2 and ip ≡ 0 (mod 2).
        let mut kb = kb_with(&["i == ip + 2", "ip % 2 == 0", "ip >= 0"]);
        let query = rng("0", "i", 2);
        let facts = [rng("0", "ip", 2), SymRange::singleton(lin("ip"))];
        assert!(covered_by_union(&mut kb, &query, &facts));
    }

    #[test]
    fn misaligned_singleton_does_not_cover() {
        let mut kb = kb_with(&["i == ip + 2", "ip % 2 == 1"]);
        let query = rng("0", "i", 2);
        let facts = [rng("0", "ip", 2), SymRange::singleton(lin("ip"))];
        assert!(!covered_by_union(&mut kb, &query, &facts));
    }

    #[test]
    fn coalesce_adjacent_contiguous() {
        let mut kb = kb_with(&["m >= 0", "m <= n"]);
        let merged = coalesce(&mut kb, &[rng("0", "m", 1), rng("m", "n", 1)]).unwrap();
        assert_eq!(merged, rng("0", "n", 1));
    }

    #[test]
    fn coalesce_range_plus_singleton() {
        // a[0..i'] ∪ {i'} → a[0..i'+1] — the Fig. 6(b) check.
        let mut kb = kb_with(&["ip >= 0"]);
        let merged = coalesce(
            &mut kb,
            &[rng("0", "ip", 1), SymRange::singleton(lin("ip"))],
        )
        .unwrap();
        assert_eq!(merged, rng("0", "ip + 1", 1));
    }

    #[test]
    fn coalesce_residue_classes() {
        // a[0..n:2] ∪ a[1..n:2] → a[0..n].
        let mut kb = Kb::new();
        let merged = coalesce(&mut kb, &[rng("0", "n", 2), rng("1", "n", 2)]).unwrap();
        assert_eq!(merged, rng("0", "n", 1));
    }

    #[test]
    fn coalesce_three_residues() {
        let mut kb = Kb::new();
        let merged = coalesce(
            &mut kb,
            &[rng("0", "n", 3), rng("2", "n", 3), rng("1", "n", 3)],
        )
        .unwrap();
        assert_eq!(merged, rng("0", "n", 1));
    }

    #[test]
    fn coalesce_fails_on_gap() {
        let mut kb = Kb::new();
        assert!(coalesce(&mut kb, &[rng("0", "5", 1), rng("7", "9", 1)]).is_none());
    }

    #[test]
    fn coalesce_strided_extension() {
        // a[0..i:2] ∪ {i} with i even and nonnegative → a[0..i+1:2].
        let mut kb = kb_with(&["i % 2 == 0", "i >= 0"]);
        let merged = coalesce(&mut kb, &[rng("0", "i", 2), SymRange::singleton(lin("i"))]).unwrap();
        assert_eq!(merged, rng("0", "i + 1", 2));
    }

    #[test]
    fn coalesce_subsumed_pairs() {
        let mut kb = Kb::new();
        let merged = coalesce(&mut kb, &[rng("0", "10", 1), rng("2", "5", 1)]).unwrap();
        assert_eq!(merged, rng("0", "10", 1));
    }

    #[test]
    fn singleton_chain() {
        // {i} ∪ {i+1} ∪ {i+2} → [i..i+3).
        let mut kb = Kb::new();
        let merged = coalesce(
            &mut kb,
            &[
                SymRange::singleton(lin("i")),
                SymRange::singleton(lin("i + 1")),
                SymRange::singleton(lin("i + 2")),
            ],
        )
        .unwrap();
        assert_eq!(merged, rng("i", "i + 3", 1));
    }
}
