//! Brute-force exactness oracle for the symbolic range engine.
//!
//! For constant bounds the symbolic answers have a trivially computable
//! ground truth: enumerate the concrete index sets. Over every small
//! `(lo, hi, step)` combination this checks that
//!
//! * [`subsumes`] is *sound*: a `true` answer implies set inclusion;
//! * [`covered_by_union`] is *sound*: a `true` answer implies the query's
//!   index set is inside the facts' union (the engine is deliberately
//!   incomplete — a `false` merely places an extra check — so only this
//!   direction is asserted);
//! * [`coalesce`] is *exact* in both directions: when it returns a range,
//!   that range's index set equals the union of the inputs (§4 coalescing
//!   replaces checks, so over- *and* under-approximation would be bugs);
//! * the strided frontier-advance branch of `covered_by_union` (a fact
//!   whose last grid point is provably `hi - 1` advances the frontier to
//!   `hi - 1 + step`, not `hi`) is actually reachable and sound.

use bigfoot_entail::{coalesce, covered_by_union, subsumes, Kb, Lin, SymRange};
use std::collections::BTreeSet;

/// A symbolic range with constant bounds.
fn crange(lo: i64, hi: i64, step: i64) -> SymRange {
    SymRange {
        lo: Lin::constant(lo),
        hi: Lin::constant(hi),
        step,
    }
}

/// Ground truth: the concrete index set `{lo + i·step | lo + i·step < hi}`.
fn indices(r: &SymRange) -> BTreeSet<i64> {
    let lo = r.lo.as_const().expect("constant lo");
    let hi = r.hi.as_const().expect("constant hi");
    let mut out = BTreeSet::new();
    let mut i = lo;
    while i < hi {
        out.insert(i);
        i += r.step;
    }
    out
}

/// Every `(lo, hi, step)` over small bounds; includes empty (`lo >= hi`)
/// and `lo == hi` forms.
fn pool() -> Vec<SymRange> {
    let mut out = Vec::new();
    for lo in 0..=4i64 {
        for hi in 0..=6i64 {
            for step in 1..=3i64 {
                out.push(crange(lo, hi, step));
            }
        }
    }
    out
}

#[test]
fn subsumes_is_sound_on_all_small_constant_pairs() {
    let pool = pool();
    let mut kb = Kb::new();
    let mut positives = 0usize;
    for big in &pool {
        let big_set = indices(big);
        for small in &pool {
            if subsumes(&mut kb, big, small) {
                positives += 1;
                let small_set = indices(small);
                assert!(
                    small_set.is_subset(&big_set),
                    "subsumes claimed {small:?} ⊆ {big:?}, but {small_set:?} ⊄ {big_set:?}"
                );
            }
        }
    }
    assert!(
        positives > 1000,
        "the oracle should exercise real positives"
    );
}

#[test]
fn covered_by_union_is_sound_on_all_small_constant_pairs() {
    // Facts drawn pairwise from the pool; queries from a reduced pool to
    // bound the cube. Union coverage with two facts reaches the greedy
    // frontier chain, singleton hand-off, and the merge prepass.
    let pool = pool();
    let queries: Vec<SymRange> = pool
        .iter()
        .filter(|q| {
            let lo = q.lo.as_const().unwrap();
            let hi = q.hi.as_const().unwrap();
            lo <= 1 && hi >= lo && hi <= 6
        })
        .cloned()
        .collect();
    let mut kb = Kb::new();
    let mut positives = 0usize;
    for (i, f1) in pool.iter().enumerate() {
        for f2 in &pool[i..] {
            let facts = [f1.clone(), f2.clone()];
            let mut union = indices(f1);
            union.extend(indices(f2));
            for q in &queries {
                if covered_by_union(&mut kb, q, &facts) {
                    positives += 1;
                    let q_set = indices(q);
                    assert!(
                        q_set.is_subset(&union),
                        "covered_by_union claimed {q:?} ⊆ {f1:?} ∪ {f2:?}, \
                         but {q_set:?} ⊄ {union:?}"
                    );
                }
            }
        }
    }
    assert!(
        positives > 5000,
        "the oracle should exercise real positives"
    );
}

#[test]
fn coalesce_is_exact_on_all_small_constant_pairs() {
    let pool = pool();
    let mut kb = Kb::new();
    let mut merges = 0usize;
    for f1 in &pool {
        for f2 in &pool {
            let mut union = indices(f1);
            union.extend(indices(f2));
            if let Some(m) = coalesce(&mut kb, &[f1.clone(), f2.clone()]) {
                merges += 1;
                assert_eq!(
                    indices(&m),
                    union,
                    "coalesce({f1:?}, {f2:?}) = {m:?} is not the exact union"
                );
            }
        }
    }
    assert!(merges > 500, "the oracle should exercise real merges");
}

#[test]
fn coalesce_is_exact_on_strided_triples() {
    // Residue-class fusion and strided adjacency need ≥3 inputs to fire
    // on stride-3 grids; keep the triple pool small but strided.
    let pool: Vec<SymRange> = {
        let mut out = Vec::new();
        for lo in 0..=2i64 {
            for hi in 2..=6i64 {
                for step in 1..=3i64 {
                    out.push(crange(lo, hi, step));
                }
            }
        }
        out
    };
    let mut kb = Kb::new();
    let mut merges = 0usize;
    for f1 in &pool {
        for f2 in &pool {
            for f3 in &pool {
                let mut union = indices(f1);
                union.extend(indices(f2));
                union.extend(indices(f3));
                if let Some(m) = coalesce(&mut kb, &[f1.clone(), f2.clone(), f3.clone()]) {
                    merges += 1;
                    assert_eq!(
                        indices(&m),
                        union,
                        "coalesce({f1:?}, {f2:?}, {f3:?}) = {m:?} is not the exact union"
                    );
                }
            }
        }
    }
    assert!(merges > 1000, "the oracle should exercise real merges");
}

#[test]
fn strided_frontier_advance_is_reachable_and_sound() {
    // Fact [0..3:2] covers {0, 2}; its last grid point 2 is provably
    // hi - 1, so the frontier advances to 3 - 1 + 2 = 4 — allowing the
    // singleton {4} to finish covering the query [0..5:2] = {0, 2, 4}.
    // With the conservative frontier (pos = hi = 3) the singleton at 4
    // would not match and coverage would be refused.
    let mut kb = Kb::new();
    let query = crange(0, 5, 2);
    let facts = [crange(0, 3, 2), crange(4, 5, 1)];
    assert!(
        covered_by_union(&mut kb, &query, &facts),
        "frontier must advance past the stride gap"
    );
    let mut union = indices(&facts[0]);
    union.extend(indices(&facts[1]));
    assert!(
        indices(&query).is_subset(&union),
        "the oracle itself agrees"
    );

    // The same shape one notch longer: [0..5:2] ∪ {6} covers [0..7:2].
    let query = crange(0, 7, 2);
    let facts = [crange(0, 5, 2), crange(6, 7, 1)];
    assert!(covered_by_union(&mut kb, &query, &facts));

    // Misaligned singleton (5 is off the even grid): must refuse.
    let query = crange(0, 7, 2);
    let facts = [crange(0, 5, 2), crange(5, 6, 1)];
    assert!(!covered_by_union(&mut kb, &query, &facts));
}
