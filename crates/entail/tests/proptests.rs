//! Property-based tests for the entailment engine: every symbolic answer
//! is validated against brute-force evaluation on concrete assignments.

use bigfoot_bfj::{parse_expr, Expr};
use bigfoot_entail::{coalesce, covered_by_union, linearize, subsumes, Kb, Lin, SymRange};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A concrete strided range over small integers.
#[derive(Debug, Clone, Copy)]
struct CRange {
    lo: i64,
    hi: i64,
    step: i64,
}

impl CRange {
    fn indices(&self) -> BTreeSet<i64> {
        let mut s = BTreeSet::new();
        let mut i = self.lo;
        while i < self.hi {
            s.insert(i);
            i += self.step;
        }
        s
    }

    fn sym(&self) -> SymRange {
        SymRange {
            lo: Lin::constant(self.lo),
            hi: Lin::constant(self.hi),
            step: self.step,
        }
    }
}

fn crange() -> impl Strategy<Value = CRange> {
    (-8i64..24, -8i64..24, 1i64..5).prop_map(|(lo, hi, step)| CRange { lo, hi, step })
}

proptest! {
    /// `subsumes` never claims containment that concrete enumeration
    /// refutes.
    #[test]
    fn subsumes_is_sound(a in crange(), b in crange()) {
        let mut kb = Kb::new();
        if subsumes(&mut kb, &a.sym(), &b.sym()) {
            prop_assert!(b.indices().is_subset(&a.indices()),
                "claimed {:?} ⊇ {:?}", a, b);
        }
    }

    /// `covered_by_union` never claims coverage that enumeration refutes.
    #[test]
    fn union_coverage_is_sound(q in crange(), facts in prop::collection::vec(crange(), 0..4)) {
        let mut kb = Kb::new();
        let syms: Vec<SymRange> = facts.iter().map(CRange::sym).collect();
        if covered_by_union(&mut kb, &q.sym(), &syms) {
            let mut union = BTreeSet::new();
            for f in &facts {
                union.extend(f.indices());
            }
            prop_assert!(q.indices().is_subset(&union),
                "claimed {:?} ⊆ ∪{:?}", q, facts);
        }
    }

    /// `coalesce` produces a range denoting *exactly* the union (both
    /// inclusions — this is the address-precision-critical property).
    #[test]
    fn coalesce_is_exact(facts in prop::collection::vec(crange(), 1..4)) {
        let mut kb = Kb::new();
        let syms: Vec<SymRange> = facts.iter().map(CRange::sym).collect();
        if let Some(merged) = coalesce(&mut kb, &syms) {
            let got = CRange {
                lo: merged.lo.as_const().expect("const"),
                hi: merged.hi.as_const().expect("const"),
                step: merged.step,
            }
            .indices();
            let mut want = BTreeSet::new();
            for f in &facts {
                want.extend(f.indices());
            }
            prop_assert_eq!(got, want, "coalesce of {:?}", facts);
        }
    }

    /// Kb entailment of comparisons is sound w.r.t. concrete valuations:
    /// if facts hold under an assignment, an entailed query holds too.
    #[test]
    fn entailment_is_sound(
        xv in -20i64..20,
        yv in -20i64..20,
        zv in -20i64..20,
        fact_pick in prop::collection::vec(0usize..6, 0..4),
        query_pick in 0usize..6,
    ) {
        let pool = [
            "x <= y", "y <= z", "x == y + 1", "z >= 0", "x < z", "y != z",
        ];
        let eval = |src: &str| -> bool {
            let e = parse_expr(src).unwrap();
            eval_bool(&e, xv, yv, zv)
        };
        let facts: Vec<&str> = fact_pick.iter().map(|i| pool[*i]).collect();
        // Only consider assignments under which every fact is true.
        prop_assume!(facts.iter().all(|f| eval(f)));
        let mut kb = Kb::new();
        for f in &facts {
            kb.assume(&parse_expr(f).unwrap());
        }
        let q = pool[query_pick];
        if kb.entails(&parse_expr(q).unwrap()) {
            prop_assert!(eval(q), "facts {:?} entailed {:?} but it is false at x={xv},y={yv},z={zv}", facts, q);
        }
    }

    /// Linearization agrees with direct evaluation.
    #[test]
    fn linearize_preserves_value(a in -10i64..10, b in -10i64..10, c in 1i64..5) {
        let src = format!("{a} * x + {b} - x * {c}");
        let e = parse_expr(&src).unwrap();
        let l = linearize(&e).expect("linear");
        for xv in -5..5 {
            let direct = a * xv + b - xv * c;
            let via_lin = eval_int(&l.to_expr(), xv);
            prop_assert_eq!(direct, via_lin);
        }
    }
}

fn eval_int(e: &Expr, xv: i64) -> i64 {
    use bigfoot_bfj::{Binop, Unop};
    match e {
        Expr::Int(n) => *n,
        Expr::Var(v) if v.as_str() == "x" => xv,
        Expr::Unop(Unop::Neg, a) => -eval_int(a, xv),
        Expr::Binop(op, a, b) => {
            let (a, b) = (eval_int(a, xv), eval_int(b, xv));
            match op {
                Binop::Add => a + b,
                Binop::Sub => a - b,
                Binop::Mul => a * b,
                _ => panic!("unexpected op"),
            }
        }
        other => panic!("unexpected expr {other:?}"),
    }
}

fn eval_bool(e: &Expr, xv: i64, yv: i64, zv: i64) -> bool {
    use bigfoot_bfj::Binop;
    let val = |v: &Expr| -> i64 {
        match v {
            Expr::Int(n) => *n,
            Expr::Var(s) => match s.as_str() {
                "x" => xv,
                "y" => yv,
                "z" => zv,
                other => panic!("unexpected var {other}"),
            },
            Expr::Binop(Binop::Add, a, b) => {
                let (a, b) = (val_helper(a, xv, yv, zv), val_helper(b, xv, yv, zv));
                a + b
            }
            other => panic!("unexpected term {other:?}"),
        }
    };
    match e {
        Expr::Binop(op, a, b) => {
            let (a, b) = (val(a), val(b));
            match op {
                Binop::Le => a <= b,
                Binop::Lt => a < b,
                Binop::Ge => a >= b,
                Binop::Gt => a > b,
                Binop::Eq => a == b,
                Binop::Ne => a != b,
                other => panic!("unexpected cmp {other:?}"),
            }
        }
        other => panic!("unexpected bool {other:?}"),
    }
}

fn val_helper(e: &Expr, xv: i64, yv: i64, zv: i64) -> i64 {
    match e {
        Expr::Int(n) => *n,
        Expr::Var(s) => match s.as_str() {
            "x" => xv,
            "y" => yv,
            "z" => zv,
            other => panic!("unexpected var {other}"),
        },
        other => panic!("unexpected term {other:?}"),
    }
}
