//! Property tests for the shadow substrate.
//!
//! The central claim (§4 / SlimState): the adaptive compressed array
//! shadow is *lossless* — it reports a race exactly when a fully
//! fine-grained detector does, for any sequence of committed ranges.

use bigfoot_bfj::ConcreteRange;
use bigfoot_shadow::{ArrayShadow, Footprint, RangeSet};
use bigfoot_vc::{AccessKind, Tid, VarState, VectorClock};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One committed operation in a synthetic schedule.
#[derive(Debug, Clone)]
struct Op {
    tid: u32,
    kind: AccessKind,
    lo: i64,
    len: i64,
    step: i64,
    /// Synchronize (join clocks through a lock) before this op?
    sync_before: bool,
}

fn op() -> impl Strategy<Value = Op> {
    (
        0u32..3,
        prop::bool::ANY,
        0i64..32,
        1i64..16,
        1i64..4,
        prop::bool::ANY,
    )
        .prop_map(|(tid, w, lo, len, step, sync_before)| Op {
            tid,
            kind: if w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            lo,
            len,
            step,
            sync_before,
        })
}

/// A tiny lock-based happens-before world for the test: a single global
/// lock; `sync_before` means acquire-release around the op.
struct World {
    clocks: Vec<VectorClock>,
    lock: VectorClock,
}

impl World {
    fn new(n: usize) -> World {
        let mut clocks = Vec::new();
        for t in 0..n {
            let mut c = VectorClock::new();
            c.set(Tid(t as u32), 1);
            clocks.push(c);
        }
        World {
            clocks,
            lock: VectorClock::new(),
        }
    }

    fn sync(&mut self, t: usize) {
        // acquire; release (both edges) — orders this op with every prior
        // synced op.
        let c = &mut self.clocks[t];
        c.join(&self.lock);
        self.lock = c.clone();
        let v = c.get(Tid(t as u32)) + 1;
        c.set(Tid(t as u32), v);
    }
}

const N: usize = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compressed and fine-grained detectors agree on *whether* each
    /// committed range races.
    #[test]
    fn adaptive_shadow_is_lossless(ops in prop::collection::vec(op(), 1..24)) {
        let mut world = World::new(3);
        let mut compressed = ArrayShadow::new(N);
        let mut fine: Vec<VarState> = vec![VarState::new(); N];
        for o in &ops {
            let t = Tid(o.tid);
            if o.sync_before {
                world.sync(o.tid as usize);
            }
            let range = ConcreteRange { lo: o.lo, hi: (o.lo + o.len).min(N as i64), step: o.step };
            let clock = world.clocks[o.tid as usize].clone();
            let out = compressed.apply(range, o.kind, t, &clock);
            // Reference: per-element fine-grained.
            let mut fine_raced = BTreeSet::new();
            for i in range.indices() {
                if i < 0 || i >= N as i64 { continue; }
                if fine[i as usize].apply(o.kind, t, &clock).is_err() {
                    fine_raced.insert(i);
                }
            }
            let compressed_raced: BTreeSet<i64> = out
                .races
                .iter()
                .flat_map(|(extent, _)| extent.indices().filter(|i| range.contains(*i)))
                .collect();
            // Verdict equivalence per commit: the compressed detector
            // reports a race iff some element-level race exists, and the
            // compressed extent covers every racy element.
            prop_assert_eq!(
                fine_raced.is_empty(),
                compressed_raced.is_empty(),
                "fine {:?} vs compressed {:?} on {:?}",
                fine_raced, compressed_raced, o
            );
            prop_assert!(
                fine_raced.iter().all(|i| out
                    .races
                    .iter()
                    .any(|(extent, _)| extent.contains(*i))),
                "compressed extents {:?} miss fine racy elements {:?}",
                out.races, fine_raced
            );
        }
    }

    /// RangeSet::push_* accumulates exactly the inserted index set.
    #[test]
    fn rangeset_matches_reference(ranges in prop::collection::vec((0i64..64, 1i64..16, 1i64..4), 1..16)) {
        let mut rs = RangeSet::new();
        let mut reference = BTreeSet::new();
        for (lo, len, step) in ranges {
            let r = ConcreteRange { lo, hi: lo + len, step };
            rs.push_range(r);
            reference.extend(r.indices());
        }
        let got: BTreeSet<i64> = rs.ranges().iter().flat_map(|r| r.indices()).collect();
        prop_assert_eq!(got, reference);
    }

    /// Per-index pushes (the SlimState per-access mode) also match, and
    /// sequential patterns collapse to few ranges.
    #[test]
    fn rangeset_index_pushes(indices in prop::collection::vec(0i64..64, 1..64)) {
        let mut rs = RangeSet::new();
        let mut reference = BTreeSet::new();
        for i in &indices {
            rs.push_index(*i);
            reference.insert(*i);
        }
        let got: BTreeSet<i64> = rs.ranges().iter().flat_map(|r| r.indices()).collect();
        prop_assert_eq!(got, reference);
    }

    /// Footprints never confuse read and write kinds.
    #[test]
    fn footprint_kind_separation(items in prop::collection::vec((prop::bool::ANY, 0i64..32), 1..20)) {
        let mut fp = Footprint::new();
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for (w, i) in items {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            fp.add(kind, ConcreteRange::singleton(i));
            if w { writes.insert(i); } else { reads.insert(i); }
        }
        let got_reads: BTreeSet<i64> = fp.reads.ranges().iter().flat_map(|r| r.indices()).collect();
        let got_writes: BTreeSet<i64> = fp.writes.ranges().iter().flat_map(|r| r.indices()).collect();
        prop_assert_eq!(got_reads, reads);
        prop_assert_eq!(got_writes, writes);
    }
}
