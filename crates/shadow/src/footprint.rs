//! Per-thread array footprints: the set of indices with *pending* (deferred)
//! checks, maintained between synchronization operations (§4 "Dynamic Array
//! Compression", after S LIM S TATE).
//!
//! A thread's footprint for an array accumulates strided ranges from either
//! individual accesses (SlimState mode) or statically-coalesced checks
//! (BigFoot mode). At the thread's next synchronization point the footprint
//! is *committed*: each accumulated range is applied to the array's shadow
//! state.

use bigfoot_bfj::ConcreteRange;
use bigfoot_vc::AccessKind;

/// A set of concrete strided ranges with merge-on-insert.
///
/// Insertion greedily merges adjacent/overlapping contiguous ranges and
/// detects constant strides from consecutive singleton inserts, so a loop
/// touching `a[0], a[2], a[4], …` accumulates the single range `0..n:2`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<ConcreteRange>,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// True if no index is pending.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The accumulated ranges.
    pub fn ranges(&self) -> &[ConcreteRange] {
        &self.ranges
    }

    /// Number of stored ranges (footprint size, for stats).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Inserts a single index.
    pub fn push_index(&mut self, i: i64) {
        self.push_range(ConcreteRange::singleton(i));
    }

    /// Inserts a strided range, merging with the most recent entries where
    /// possible.
    pub fn push_range(&mut self, r: ConcreteRange) {
        if r.is_empty() {
            return;
        }
        if let Some(last) = self.ranges.last_mut() {
            if let Some(merged) = merge(*last, r) {
                *last = merged;
                return;
            }
            // Stride detection: two singletons at distance k become a
            // strided range.
            if last.len() == 1 && r.len() == 1 {
                let k = r.lo - last.lo;
                if k > 1 {
                    *last = ConcreteRange {
                        lo: last.lo,
                        hi: r.lo + 1,
                        step: k,
                    };
                    return;
                }
            }
        }
        self.ranges.push(r);
    }

    /// True if index `i` is covered by some stored range.
    pub fn contains(&self, i: i64) -> bool {
        self.ranges.iter().any(|r| r.contains(i))
    }

    /// Drains the stored ranges for a commit.
    pub fn take(&mut self) -> Vec<ConcreteRange> {
        std::mem::take(&mut self.ranges)
    }

    /// Extends the last range's exclusive upper bound by `delta` (> 0)
    /// in place. Used by compressed replay to apply the net growth of
    /// `k` skipped loop repetitions in O(1) after probing that each
    /// repetition extends exactly this range by exactly `delta / k` —
    /// it is the caller's job to have established that invariant.
    pub fn grow_last_hi(&mut self, delta: i64) {
        debug_assert!(delta > 0, "growth must be positive");
        if let Some(last) = self.ranges.last_mut() {
            last.hi += delta;
        }
    }

    /// Empties the set, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

/// Exact union of two concrete ranges, if expressible as one range.
fn merge(a: ConcreteRange, b: ConcreteRange) -> Option<ConcreteRange> {
    if a.is_empty() {
        return Some(b);
    }
    if b.is_empty() {
        return Some(a);
    }
    // Same stride, aligned, overlapping-or-adjacent grids.
    if a.step == b.step {
        let k = a.step;
        if (b.lo - a.lo) % k == 0 {
            let a_end = a.last_plus_one();
            let b_end = b.last_plus_one();
            // b starts within or exactly after a's grid.
            if b.lo >= a.lo && b.lo <= a_end - 1 + k {
                return Some(ConcreteRange {
                    lo: a.lo,
                    hi: a_end.max(b_end),
                    step: k,
                });
            }
            if a.lo >= b.lo && a.lo <= b_end - 1 + k {
                return Some(ConcreteRange {
                    lo: b.lo,
                    hi: a_end.max(b_end),
                    step: k,
                });
            }
        }
        return None;
    }
    // A singleton extends a strided range at its next grid point (either
    // order).
    let (range, single) = if b.len() == 1 {
        (a, b)
    } else if a.len() == 1 {
        (b, a)
    } else {
        return None;
    };
    let k = range.step;
    if (single.lo - range.lo) % k == 0 && single.lo == range.last_plus_one() - 1 + k {
        return Some(ConcreteRange {
            lo: range.lo,
            hi: single.lo + 1,
            step: k,
        });
    }
    if single.lo + k == range.lo {
        return Some(ConcreteRange {
            lo: single.lo,
            hi: range.hi,
            step: k,
        });
    }
    None
}

/// A thread's pending checks for one array: separate read and write range
/// sets (a write check subsumes a read check on the same index, so writes
/// are also consulted when deduplicating reads).
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Pending read-check ranges.
    pub reads: RangeSet,
    /// Pending write-check ranges.
    pub writes: RangeSet,
}

impl Footprint {
    /// An empty footprint.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Adds a pending check.
    pub fn add(&mut self, kind: AccessKind, r: ConcreteRange) {
        match kind {
            AccessKind::Read => self.reads.push_range(r),
            AccessKind::Write => self.writes.push_range(r),
        }
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Approximate retained size, in range units (space accounting).
    pub fn space_units(&self) -> usize {
        3 * (self.reads.len() + self.writes.len())
    }

    /// Empties both range sets, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_indices_merge() {
        let mut s = RangeSet::new();
        for i in 0..100 {
            s.push_index(i);
        }
        assert_eq!(s.ranges(), &[ConcreteRange::contiguous(0, 100)]);
    }

    #[test]
    fn strided_indices_merge() {
        let mut s = RangeSet::new();
        for i in (0..100).step_by(2) {
            s.push_index(i);
        }
        assert_eq!(s.len(), 1);
        let r = s.ranges()[0];
        assert_eq!(r.step, 2);
        assert!(r.contains(98));
        assert!(!r.contains(97));
    }

    #[test]
    fn coalesced_ranges_merge_with_ranges() {
        let mut s = RangeSet::new();
        s.push_range(ConcreteRange::contiguous(0, 50));
        s.push_range(ConcreteRange::contiguous(50, 100));
        assert_eq!(s.ranges(), &[ConcreteRange::contiguous(0, 100)]);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let mut s = RangeSet::new();
        s.push_range(ConcreteRange::contiguous(0, 60));
        s.push_range(ConcreteRange::contiguous(40, 100));
        assert_eq!(s.ranges(), &[ConcreteRange::contiguous(0, 100)]);
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let mut s = RangeSet::new();
        s.push_range(ConcreteRange::contiguous(0, 10));
        s.push_range(ConcreteRange::contiguous(20, 30));
        assert_eq!(s.len(), 2);
        assert!(s.contains(5));
        assert!(!s.contains(15));
        assert!(s.contains(25));
    }

    #[test]
    fn reverse_iteration_merges() {
        let mut s = RangeSet::new();
        s.push_range(ConcreteRange::contiguous(50, 100));
        s.push_range(ConcreteRange::contiguous(0, 50));
        assert_eq!(s.ranges(), &[ConcreteRange::contiguous(0, 100)]);
    }

    #[test]
    fn take_drains() {
        let mut s = RangeSet::new();
        s.push_index(3);
        let drained = s.take();
        assert_eq!(drained.len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn footprint_separates_kinds() {
        let mut f = Footprint::new();
        f.add(AccessKind::Read, ConcreteRange::contiguous(0, 10));
        f.add(AccessKind::Write, ConcreteRange::contiguous(0, 5));
        assert_eq!(f.reads.len(), 1);
        assert_eq!(f.writes.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn singleton_then_stride_then_more() {
        // 0, 3, 6, 9 → one range with stride 3.
        let mut s = RangeSet::new();
        for i in [0, 3, 6, 9] {
            s.push_index(i);
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.ranges()[0].step, 3);
        assert_eq!(
            s.ranges()[0].indices().collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
    }
}
