//! Shadow-memory substrate for the BigFoot reproduction.
//!
//! Precise dynamic race detectors keep, for each target memory location, a
//! *shadow location* recording its access history. This crate provides the
//! three shadow structures the paper's detectors share:
//!
//! * [`ArrayShadow`] — the adaptive, lossless array compression scheme of
//!   S LIM S TATE, reused by BigFoot (coarse → blocks/strided → fine);
//! * [`Footprint`]/[`RangeSet`] — per-thread pending-check footprints that
//!   defer array checks to the next synchronization operation;
//! * [`ObjectShadow`]/[`FieldGrouping`] — per-object shadow state with
//!   static field-proxy compression;
//! * [`Slab`] — dense `Vec`-indexed storage for shadow state keyed by the
//!   interpreter's dense integer ids (the detectors' hot-path store).
//!
//! Space accounting (`space_units`) underlies the Table 2 memory-overhead
//! experiment; operation counting (`ApplyOutcome::shadow_ops`) underlies
//! the Table 1 / Figure 8 cost model.

mod array;
mod footprint;
mod object;
pub mod slab;

pub use array::{ApplyOutcome, ArrayShadow, ReprKind};
pub use footprint::{Footprint, RangeSet};
pub use object::{FieldGrouping, ObjectShadow};
pub use slab::{Slab, SlabKey};
