//! Dense `Vec`-indexed slab storage for shadow state keyed by integer ids.
//!
//! The interpreter assigns `ObjId`/`ArrId` densely from 0, so the
//! detector's per-event shadow lookups — the hottest operation in the
//! whole pipeline — can be a bounds check and an array index instead of a
//! hash-map probe. A [`Slab`] stores values in `Vec<Option<T>>` slots for
//! ids below a density cap and spills anything else (sparse or malformed
//! ids, e.g. from hand-built traces) into a hash map, so behaviour never
//! depends on the key distribution.
//!
//! The replay engine shards ids by `id % SHARDS`; within shard `s` the
//! surviving ids are `s, s + SHARDS, s + 2·SHARDS, …`. Constructing the
//! shard's slab with [`Slab::with_stride`]`(SHARDS)` indexes by
//! `id / SHARDS`, which is dense again — no per-shard memory blow-up.
//!
//! For differential testing, [`set_force_map_store`] routes **all** new
//! inserts of every slab through the spill map, turning the store back
//! into the pre-slab hash-map implementation. The A/B harness in
//! `bigfoot-detectors` uses it to assert bit-identical verdicts between
//! the two stores; it is not meant for production configuration.

use bigfoot_bfj::{ArrId, ObjId};
use bigfoot_obs::fx::FxHashMap;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Ids whose slab index reaches this bound go to the spill map instead of
/// growing the dense vector (caps worst-case memory for adversarial ids).
const DENSE_LIMIT: usize = 1 << 22;

static FORCE_MAP: AtomicBool = AtomicBool::new(false);

/// Routes all *subsequent* slab inserts through the spill hash map,
/// reproducing the pre-slab map-based store. Differential-test hook only:
/// process-global, so tests using it must not run concurrently with other
/// detector tests in the same process.
pub fn set_force_map_store(on: bool) {
    FORCE_MAP.store(on, Ordering::Relaxed);
}

/// True while [`set_force_map_store`]`(true)` is in effect.
pub fn force_map_store() -> bool {
    FORCE_MAP.load(Ordering::Relaxed)
}

/// A key usable with [`Slab`]: copyable, hashable (for the spill map), and
/// reducible to its raw integer id.
pub trait SlabKey: Copy + Eq + Hash {
    /// The raw dense id.
    fn raw(self) -> u32;
}

impl SlabKey for ObjId {
    #[inline]
    fn raw(self) -> u32 {
        self.0
    }
}

impl SlabKey for ArrId {
    #[inline]
    fn raw(self) -> u32 {
        self.0
    }
}

impl SlabKey for u32 {
    #[inline]
    fn raw(self) -> u32 {
        self
    }
}

/// Dense slab with hash-map spill; see the module docs.
#[derive(Debug, Clone)]
pub struct Slab<K: SlabKey, T> {
    slots: Vec<Option<T>>,
    spill: FxHashMap<K, T>,
    shift: u32,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: SlabKey, T> Default for Slab<K, T> {
    fn default() -> Slab<K, T> {
        Slab::new()
    }
}

impl<K: SlabKey, T> Slab<K, T> {
    /// A slab indexing directly by id (the serial detector).
    pub fn new() -> Slab<K, T> {
        Slab::with_stride(1)
    }

    /// A slab for keys sharing a residue class modulo `stride` (a replay
    /// shard): indexes by `id / stride`. `stride` must be a power of two.
    pub fn with_stride(stride: u32) -> Slab<K, T> {
        assert!(
            stride.is_power_of_two(),
            "slab stride must be a power of two"
        );
        Slab {
            slots: Vec::new(),
            spill: FxHashMap::default(),
            shift: stride.trailing_zeros(),
            len: 0,
            _key: PhantomData,
        }
    }

    #[inline]
    fn idx(&self, k: K) -> usize {
        (k.raw() >> self.shift) as usize
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared lookup.
    #[inline]
    pub fn get(&self, k: K) -> Option<&T> {
        let i = self.idx(k);
        if let Some(Some(v)) = self.slots.get(i) {
            return Some(v);
        }
        if self.spill.is_empty() {
            None
        } else {
            self.spill.get(&k)
        }
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, k: K) -> Option<&mut T> {
        let i = self.idx(k);
        if let Some(slot) = self.slots.get_mut(i) {
            if let Some(v) = slot.as_mut() {
                return Some(v);
            }
        }
        if self.spill.is_empty() {
            None
        } else {
            self.spill.get_mut(&k)
        }
    }

    /// Inserts (or replaces) the value for `k`.
    pub fn insert(&mut self, k: K, v: T) {
        let i = self.idx(k);
        if i < DENSE_LIMIT && !force_map_store() {
            if i >= self.slots.len() {
                self.slots.resize_with(i + 1, || None);
            }
            if self.slots[i].replace(v).is_none() {
                // A replace of a spilled duplicate cannot happen: dense-
                // eligible keys only ever reach the spill in forced-map
                // mode, and then stay there on replacement below.
                self.len += 1;
            }
        } else if self.spill.insert(k, v).is_none() {
            self.len += 1;
        }
    }

    /// Iterates stored values (dense slots in id order, then spill in hash
    /// order); callers must not rely on ordering across the two regions.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .chain(self.spill.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_and_values() {
        let mut s: Slab<u32, String> = Slab::new();
        assert!(s.is_empty());
        for k in 0..100u32 {
            s.insert(k, format!("v{k}"));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(7).map(String::as_str), Some("v7"));
        assert_eq!(s.get_mut(99).map(|v| v.as_str()), Some("v99"));
        assert_eq!(s.get(100), None);
        assert_eq!(s.values().count(), 100);
        s.insert(7, "again".into());
        assert_eq!(s.len(), 100, "replacement does not grow len");
        assert_eq!(s.get(7).map(String::as_str), Some("again"));
    }

    #[test]
    fn strided_keys_stay_dense() {
        let mut s: Slab<u32, u64> = Slab::with_stride(64);
        for k in (3..6403u32).step_by(64) {
            s.insert(k, k as u64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(3 + 64 * 50), Some(&((3 + 64 * 50) as u64)));
        // Dense region covers them all: nothing spilled.
        assert!(s.spill.is_empty());
        assert_eq!(s.slots.iter().filter(|x| x.is_some()).count(), 100);
    }

    #[test]
    fn sparse_ids_spill() {
        let mut s: Slab<u32, u8> = Slab::new();
        s.insert(5, 1);
        s.insert(u32::MAX, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(5), Some(&1));
        assert_eq!(s.get(u32::MAX), Some(&2));
        assert!(s.slots.len() <= DENSE_LIMIT);
        assert_eq!(s.spill.len(), 1);
        assert_eq!(s.values().count(), 2);
    }

    #[test]
    fn forced_map_mode_routes_to_spill() {
        set_force_map_store(true);
        let mut s: Slab<u32, u8> = Slab::new();
        s.insert(0, 7);
        s.insert(1, 8);
        set_force_map_store(false);
        assert_eq!(s.spill.len(), 2);
        assert_eq!(s.get(0), Some(&7));
        assert_eq!(s.get_mut(1), Some(&mut 8));
        assert_eq!(s.values().count(), 2);
    }
}
