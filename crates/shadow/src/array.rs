//! Adaptive array shadow state, after S LIM S TATE (Wilcox et al., ASE
//! 2015), as used by BigFoot's run time (§4 "Dynamic Array Compression").
//!
//! An array starts with a single *coarse* shadow location covering every
//! element. When a committed footprint does not match the current
//! representation, the representation is refined — to contiguous *blocks*,
//! to per-residue-class *strided* states, or ultimately to a *fine* state
//! per element. Refinement copies the enclosing state into each new part,
//! which is **lossless**: an operation is only ever applied to a
//! compressed state whose extent exactly matches a committed range, so the
//! copied history is exact for every covered element, and race verdicts
//! coincide with a fully fine-grained detector.

use bigfoot_bfj::ConcreteRange;
use bigfoot_vc::{AccessKind, RaceInfo, Tid, VarState, VectorClock};

/// Maximum number of block segments before degrading to fine-grained.
const MAX_SEGMENTS: usize = 64;

/// The representation of one array's shadow state.
#[derive(Debug, Clone)]
enum Repr {
    /// One shadow location for the whole array.
    Coarse(VarState),
    /// Contiguous segments: `states[i]` covers `bounds[i] .. bounds[i+1]`.
    Blocks {
        bounds: Vec<i64>,
        states: Vec<VarState>,
    },
    /// One shadow location per residue class modulo `k`.
    Strided { k: i64, states: Vec<VarState> },
    /// One shadow location per element.
    Fine(Vec<VarState>),
}

/// Which representation an [`ArrayShadow`] currently uses (for tests and
/// statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReprKind {
    /// Single shadow location.
    Coarse,
    /// Contiguous segments.
    Blocks,
    /// Per-residue-class.
    Strided,
    /// Per-element.
    Fine,
}

/// Next step for the iterative apply-or-refine loop.
enum Step {
    Done,
    ToBlocks,
    ToStrided(i64),
    ToFine,
}

/// The result of applying a committed range to an array's shadow state.
#[derive(Debug, Clone, Default)]
pub struct ApplyOutcome {
    /// Number of shadow-location check-and-update operations performed.
    pub shadow_ops: u64,
    /// Races detected, with the sub-range of the offending shadow state.
    pub races: Vec<(ConcreteRange, RaceInfo)>,
}

/// Adaptive shadow state for a single array.
///
/// # Examples
///
/// ```
/// use bigfoot_shadow::ArrayShadow;
/// use bigfoot_bfj::ConcreteRange;
/// use bigfoot_vc::{AccessKind, Tid, VectorClock};
///
/// let mut clock = VectorClock::new();
/// clock.tick(Tid(0));
/// let mut shadow = ArrayShadow::new(100);
/// // A whole-array write commits against a single shadow location.
/// let out = shadow.apply(ConcreteRange::contiguous(0, 100), AccessKind::Write, Tid(0), &clock);
/// assert_eq!(out.shadow_ops, 1);
/// assert!(out.races.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ArrayShadow {
    len: i64,
    repr: Repr,
}

impl ArrayShadow {
    /// Creates the initial coarse shadow for an array of `len` elements.
    pub fn new(len: usize) -> ArrayShadow {
        ArrayShadow {
            len: len as i64,
            repr: Repr::Coarse(VarState::new()),
        }
    }

    /// The current representation kind.
    pub fn repr_kind(&self) -> ReprKind {
        match &self.repr {
            Repr::Coarse(_) => ReprKind::Coarse,
            Repr::Blocks { .. } => ReprKind::Blocks,
            Repr::Strided { .. } => ReprKind::Strided,
            Repr::Fine(_) => ReprKind::Fine,
        }
    }

    /// Number of shadow locations currently held. A zero-length array
    /// shadows no elements, so it reports zero locations (its initial
    /// coarse state is inert: every commit against it is empty).
    pub fn locations(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        match &self.repr {
            Repr::Coarse(_) => 1,
            Repr::Blocks { states, .. } => states.len(),
            Repr::Strided { states, .. } => states.len(),
            Repr::Fine(states) => states.len(),
        }
    }

    /// Space in clock-entry units (Table 2 accounting). Zero for a
    /// zero-length array — it has no shadowable elements, and counting
    /// its inert coarse state would overstate `space_units` by one per
    /// empty allocation.
    pub fn space_units(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        match &self.repr {
            Repr::Coarse(s) => s.space_units(),
            Repr::Blocks { bounds, states } => {
                bounds.len() + states.iter().map(VarState::space_units).sum::<usize>()
            }
            Repr::Strided { states, .. } => {
                1 + states.iter().map(VarState::space_units).sum::<usize>()
            }
            Repr::Fine(states) => states.iter().map(VarState::space_units).sum::<usize>(),
        }
    }

    /// Applies a committed check over `range` with the given kind, thread,
    /// and clock, adaptively refining the representation as needed.
    pub fn apply(
        &mut self,
        range: ConcreteRange,
        kind: AccessKind,
        t: Tid,
        clock: &VectorClock,
    ) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        // A non-positive stride denotes no grid at all; rejecting it here
        // (before `clamp`, whose grid rounding divides by the stride) keeps
        // malformed programmatic ranges from panicking.
        if range.step < 1 {
            return out;
        }
        let range = self.clamp(range);
        if range.is_empty() || self.len == 0 {
            return out;
        }
        bigfoot_obs::observe!("shadow.commit.len", range.len());
        self.apply_inner(range, kind, t, clock, &mut out);
        out
    }

    fn clamp(&self, r: ConcreteRange) -> ConcreteRange {
        let lo = if r.lo < 0 {
            // Round up to the first in-bounds grid point.
            let deficit = -r.lo;
            r.lo + ((deficit + r.step - 1) / r.step) * r.step
        } else {
            r.lo
        };
        ConcreteRange {
            lo,
            hi: r.hi.min(self.len),
            step: r.step,
        }
    }

    fn whole(&self, r: &ConcreteRange) -> bool {
        r.step == 1 && r.lo <= 0 && r.hi >= self.len
    }

    /// True if `r` covers its entire residue class `r.lo % r.step` within
    /// `[0, len)`.
    fn full_class(&self, r: &ConcreteRange) -> bool {
        if r.step <= 1 || r.lo >= r.step {
            return false;
        }
        if self.len <= r.lo {
            return true;
        }
        let last = r.lo + ((self.len - 1 - r.lo) / r.step) * r.step;
        r.hi > last
    }

    fn apply_inner(
        &mut self,
        r: ConcreteRange,
        kind: AccessKind,
        t: Tid,
        clock: &VectorClock,
        out: &mut ApplyOutcome,
    ) {
        // At most Coarse → (Blocks|Strided) → Fine, so three attempts
        // always suffice.
        for _ in 0..3 {
            match self.try_once(r, kind, t, clock, out) {
                Step::Done => return,
                Step::ToBlocks => {
                    bigfoot_obs::count!("shadow.transition.to_blocks");
                    self.refine_blocks(r)
                }
                Step::ToStrided(k) => {
                    bigfoot_obs::count!("shadow.transition.to_strided");
                    self.refine_strided(k)
                }
                Step::ToFine => {
                    bigfoot_obs::count!("shadow.transition.to_fine");
                    self.go_fine()
                }
            }
        }
        unreachable!("array shadow refinement did not converge");
    }

    fn try_once(
        &mut self,
        r: ConcreteRange,
        kind: AccessKind,
        t: Tid,
        clock: &VectorClock,
        out: &mut ApplyOutcome,
    ) -> Step {
        let len = self.len;
        let whole = self.whole(&r);
        let full_class = self.full_class(&r);
        match &mut self.repr {
            Repr::Coarse(state) => {
                if len == 1 || whole {
                    out.shadow_ops += 1;
                    if let Err(race) = state.apply(kind, t, clock) {
                        out.races.push((ConcreteRange::contiguous(0, len), race));
                    }
                    Step::Done
                } else if r.step == 1 {
                    Step::ToBlocks
                } else if full_class {
                    Step::ToStrided(r.step)
                } else {
                    Step::ToFine
                }
            }
            Repr::Blocks { bounds, states } => {
                if r.step != 1 {
                    return Step::ToFine;
                }
                // Split segments at r.lo and r.hi if needed.
                for cut in [r.lo, r.hi] {
                    if let Err(pos) = bounds.binary_search(&cut) {
                        bounds.insert(pos, cut);
                        let seg = pos - 1;
                        let copy = states[seg].clone();
                        states.insert(seg, copy);
                    }
                }
                if states.len() > MAX_SEGMENTS {
                    return Step::ToFine;
                }
                let first = bounds.binary_search(&r.lo).expect("cut present");
                let last = bounds.binary_search(&r.hi).expect("cut present");
                for seg in first..last {
                    out.shadow_ops += 1;
                    if let Err(race) = states[seg].apply(kind, t, clock) {
                        out.races.push((
                            ConcreteRange::contiguous(bounds[seg], bounds[seg + 1]),
                            race,
                        ));
                    }
                }
                Step::Done
            }
            Repr::Strided { k, states } => {
                let k = *k;
                if r.step == k && full_class {
                    let class = (r.lo % k) as usize;
                    out.shadow_ops += 1;
                    if let Err(race) = states[class].apply(kind, t, clock) {
                        out.races.push((
                            ConcreteRange {
                                lo: r.lo % k,
                                hi: len,
                                step: k,
                            },
                            race,
                        ));
                    }
                    Step::Done
                } else if whole {
                    for (class, state) in states.iter_mut().enumerate() {
                        out.shadow_ops += 1;
                        if let Err(race) = state.apply(kind, t, clock) {
                            out.races.push((
                                ConcreteRange {
                                    lo: class as i64,
                                    hi: len,
                                    step: k,
                                },
                                race,
                            ));
                        }
                    }
                    Step::Done
                } else {
                    Step::ToFine
                }
            }
            Repr::Fine(states) => {
                for i in r.indices() {
                    out.shadow_ops += 1;
                    if let Err(race) = states[i as usize].apply(kind, t, clock) {
                        out.races.push((ConcreteRange::singleton(i), race));
                    }
                }
                Step::Done
            }
        }
    }

    /// Refines a coarse representation into blocks cut at `r`'s bounds.
    fn refine_blocks(&mut self, r: ConcreteRange) {
        let Repr::Coarse(state) = &self.repr else {
            return self.go_fine();
        };
        let seed = state.clone();
        let mut bounds = vec![0, self.len];
        if r.lo > 0 {
            bounds.insert(1, r.lo);
        }
        if r.hi < self.len {
            bounds.insert(bounds.len() - 1, r.hi);
        }
        let states = vec![seed; bounds.len() - 1];
        self.repr = Repr::Blocks { bounds, states };
    }

    /// Refines a coarse representation into `k` residue classes.
    fn refine_strided(&mut self, k: i64) {
        let Repr::Coarse(state) = &self.repr else {
            return self.go_fine();
        };
        let seed = state.clone();
        self.repr = Repr::Strided {
            k,
            states: vec![seed; k as usize],
        };
    }

    /// Degrades to the fine-grained representation, copying each state to
    /// the elements it covered (lossless).
    fn go_fine(&mut self) {
        let n = self.len.max(0) as usize;
        let fine: Vec<VarState> = match &self.repr {
            Repr::Coarse(s) => vec![s.clone(); n],
            Repr::Blocks { bounds, states } => {
                let mut v = Vec::with_capacity(n);
                for (seg, s) in states.iter().enumerate() {
                    let width = (bounds[seg + 1] - bounds[seg]) as usize;
                    v.extend(std::iter::repeat_with(|| s.clone()).take(width));
                }
                v
            }
            Repr::Strided { k, states } => {
                (0..n).map(|i| states[i % *k as usize].clone()).collect()
            }
            Repr::Fine(states) => states.clone(),
        };
        self.repr = Repr::Fine(fine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(t: Tid, v: u32) -> VectorClock {
        let mut c = VectorClock::new();
        c.set(t, v);
        c
    }

    #[test]
    fn whole_array_commits_stay_coarse() {
        let mut sh = ArrayShadow::new(1000);
        let c = clock(Tid(0), 1);
        for _ in 0..10 {
            let out = sh.apply(
                ConcreteRange::contiguous(0, 1000),
                AccessKind::Write,
                Tid(0),
                &c,
            );
            assert_eq!(out.shadow_ops, 1);
        }
        assert_eq!(sh.repr_kind(), ReprKind::Coarse);
        assert_eq!(sh.locations(), 1);
    }

    #[test]
    fn half_array_commit_refines_to_blocks() {
        // The paper's movePts(a, 0, a.length/2) scenario.
        let mut sh = ArrayShadow::new(100);
        let c = clock(Tid(0), 1);
        sh.apply(
            ConcreteRange::contiguous(0, 100),
            AccessKind::Read,
            Tid(0),
            &c,
        );
        let out = sh.apply(
            ConcreteRange::contiguous(0, 50),
            AccessKind::Read,
            Tid(0),
            &c,
        );
        assert_eq!(sh.repr_kind(), ReprKind::Blocks);
        assert_eq!(sh.locations(), 2);
        assert_eq!(out.shadow_ops, 1, "one op on the refined first half");
    }

    #[test]
    fn strided_commits_use_residue_classes() {
        let mut sh = ArrayShadow::new(100);
        let c = clock(Tid(0), 1);
        let out = sh.apply(
            ConcreteRange {
                lo: 0,
                hi: 100,
                step: 2,
            },
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(sh.repr_kind(), ReprKind::Strided);
        assert_eq!(out.shadow_ops, 1);
        let out = sh.apply(
            ConcreteRange {
                lo: 1,
                hi: 100,
                step: 2,
            },
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(out.shadow_ops, 1);
        assert_eq!(sh.locations(), 2);
    }

    #[test]
    fn misaligned_commit_degrades_to_fine() {
        let mut sh = ArrayShadow::new(10);
        let c = clock(Tid(0), 1);
        sh.apply(
            ConcreteRange {
                lo: 0,
                hi: 10,
                step: 2,
            },
            AccessKind::Write,
            Tid(0),
            &c,
        );
        // A partial strided commit that is not a full class.
        let out = sh.apply(
            ConcreteRange {
                lo: 2,
                hi: 7,
                step: 2,
            },
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(sh.repr_kind(), ReprKind::Fine);
        assert_eq!(out.shadow_ops, 3); // elements 2, 4, 6
    }

    #[test]
    fn races_detected_across_representations() {
        let mut sh = ArrayShadow::new(50);
        sh.apply(
            ConcreteRange::contiguous(0, 50),
            AccessKind::Write,
            Tid(0),
            &clock(Tid(0), 1),
        );
        // Unordered write by another thread.
        let out = sh.apply(
            ConcreteRange::contiguous(0, 50),
            AccessKind::Write,
            Tid(1),
            &clock(Tid(1), 1),
        );
        assert_eq!(out.races.len(), 1);
        assert_eq!(out.races[0].1.prior_tid, Tid(0));
    }

    #[test]
    fn refinement_is_lossless_for_races() {
        // Write whole array by T0; then T1 (unsynchronized) reads half.
        // The race must be found even though the repr refines.
        let mut sh = ArrayShadow::new(40);
        sh.apply(
            ConcreteRange::contiguous(0, 40),
            AccessKind::Write,
            Tid(0),
            &clock(Tid(0), 1),
        );
        let out = sh.apply(
            ConcreteRange::contiguous(0, 20),
            AccessKind::Read,
            Tid(1),
            &clock(Tid(1), 1),
        );
        assert_eq!(out.races.len(), 1);
    }

    #[test]
    fn disjoint_halves_by_different_threads_do_not_race() {
        let mut sh = ArrayShadow::new(40);
        let o1 = sh.apply(
            ConcreteRange::contiguous(0, 20),
            AccessKind::Write,
            Tid(0),
            &clock(Tid(0), 1),
        );
        let o2 = sh.apply(
            ConcreteRange::contiguous(20, 40),
            AccessKind::Write,
            Tid(1),
            &clock(Tid(1), 1),
        );
        assert!(o1.races.is_empty());
        assert!(o2.races.is_empty(), "{:?}", o2.races);
    }

    #[test]
    fn many_small_blocks_degrade_to_fine() {
        let mut sh = ArrayShadow::new(1000);
        let c = clock(Tid(0), 1);
        for i in 0..200 {
            sh.apply(
                ConcreteRange::contiguous(i * 5, i * 5 + 3),
                AccessKind::Write,
                Tid(0),
                &c,
            );
            if sh.repr_kind() == ReprKind::Fine {
                break;
            }
        }
        assert_eq!(sh.repr_kind(), ReprKind::Fine);
    }

    #[test]
    fn out_of_bounds_ranges_are_clamped() {
        let mut sh = ArrayShadow::new(10);
        let c = clock(Tid(0), 1);
        let out = sh.apply(
            ConcreteRange::contiguous(-5, 20),
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(out.shadow_ops, 1); // clamps to whole array
        assert_eq!(sh.repr_kind(), ReprKind::Coarse);
    }

    #[test]
    fn zero_length_array_commits_are_noops() {
        let mut sh = ArrayShadow::new(0);
        let c = clock(Tid(0), 1);
        assert_eq!(sh.locations(), 0, "no elements, no shadow locations");
        assert_eq!(sh.space_units(), 0, "no elements, no space");
        for r in [
            ConcreteRange::contiguous(0, 0),
            ConcreteRange::singleton(0),
            ConcreteRange::contiguous(-4, 9),
            ConcreteRange {
                lo: 0,
                hi: 8,
                step: 3,
            },
        ] {
            let out = sh.apply(r, AccessKind::Write, Tid(0), &c);
            assert_eq!(out.shadow_ops, 0, "{r}: empty array never checks");
            assert!(out.races.is_empty());
        }
        // Conflicting-thread commits still cannot race on zero elements.
        let out = sh.apply(
            ConcreteRange::contiguous(0, 4),
            AccessKind::Write,
            Tid(1),
            &clock(Tid(1), 1),
        );
        assert!(out.races.is_empty());
        assert_eq!(sh.repr_kind(), ReprKind::Coarse, "repr never refines");
        assert_eq!(sh.locations(), 0);
        assert_eq!(sh.space_units(), 0);
    }

    #[test]
    fn non_positive_stride_commit_is_rejected_not_a_panic() {
        let mut sh = ArrayShadow::new(16);
        let c = clock(Tid(0), 1);
        for step in [0, -3] {
            // lo < 0 would previously reach clamp's grid rounding and
            // divide by a zero stride.
            let out = sh.apply(
                ConcreteRange {
                    lo: -5,
                    hi: 10,
                    step,
                },
                AccessKind::Write,
                Tid(0),
                &c,
            );
            assert_eq!(out.shadow_ops, 0);
            assert!(out.races.is_empty());
        }
        assert_eq!(sh.repr_kind(), ReprKind::Coarse);
    }

    #[test]
    fn lo_equals_hi_commit_is_noop_at_every_repr() {
        let c = clock(Tid(0), 1);
        let mut sh = ArrayShadow::new(12);
        // Drive the shadow through Blocks and Fine, probing an empty
        // `lo == hi` commit at each representation.
        for probe_at in [0i64, 5, 12] {
            let out = sh.apply(
                ConcreteRange::contiguous(probe_at, probe_at),
                AccessKind::Write,
                Tid(0),
                &c,
            );
            assert_eq!(out.shadow_ops, 0);
        }
        sh.apply(
            ConcreteRange::contiguous(0, 6),
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(sh.repr_kind(), ReprKind::Blocks);
        assert_eq!(
            sh.apply(
                ConcreteRange::contiguous(3, 3),
                AccessKind::Read,
                Tid(0),
                &c
            )
            .shadow_ops,
            0
        );
        sh.apply(
            ConcreteRange {
                lo: 1,
                hi: 8,
                step: 3,
            },
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(sh.repr_kind(), ReprKind::Fine);
        assert_eq!(
            sh.apply(
                ConcreteRange::contiguous(7, 7),
                AccessKind::Read,
                Tid(0),
                &c
            )
            .shadow_ops,
            0
        );
    }

    #[test]
    fn empty_commit_is_noop() {
        let mut sh = ArrayShadow::new(10);
        let c = clock(Tid(0), 1);
        let out = sh.apply(
            ConcreteRange::contiguous(5, 5),
            AccessKind::Write,
            Tid(0),
            &c,
        );
        assert_eq!(out.shadow_ops, 0);
    }

    #[test]
    fn space_units_shrink_with_compression() {
        let fine_space = {
            let mut sh = ArrayShadow::new(100);
            let c = clock(Tid(0), 1);
            for i in 0..100 {
                sh.apply(
                    ConcreteRange {
                        lo: i,
                        hi: i + 1,
                        step: 1,
                    },
                    AccessKind::Write,
                    Tid(0),
                    &c,
                );
            }
            sh.space_units()
        };
        let coarse_space = {
            let mut sh = ArrayShadow::new(100);
            let c = clock(Tid(0), 1);
            sh.apply(
                ConcreteRange::contiguous(0, 100),
                AccessKind::Write,
                Tid(0),
                &c,
            );
            sh.space_units()
        };
        assert!(coarse_space * 10 < fine_space);
    }
}
