//! Object shadow state with optional static field-proxy compression (§4
//! "Static Field Compression").
//!
//! Without compression, an object holds one [`VarState`] per field. With a
//! proxy grouping (computed by the static analysis), fields sharing a proxy
//! share a single shadow location, and a coalesced check `p.x/y/z` whose
//! fields fall into one group performs a single check-and-update.

use bigfoot_vc::{AccessKind, RaceInfo, Tid, VarState, VectorClock};

/// A per-class mapping from field index to shadow-group index.
///
/// The identity grouping (no compression) maps field `i` to group `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldGrouping {
    /// `group_of[f]` is the shadow group of field `f`.
    pub group_of: Vec<u32>,
    /// Total number of groups.
    pub groups: u32,
}

impl FieldGrouping {
    /// The identity grouping for `nfields` fields.
    pub fn identity(nfields: usize) -> FieldGrouping {
        FieldGrouping {
            group_of: (0..nfields as u32).collect(),
            groups: nfields as u32,
        }
    }

    /// Builds a grouping from an explicit assignment. Group indices must be
    /// dense in `0..groups`.
    pub fn from_assignment(group_of: Vec<u32>) -> FieldGrouping {
        let groups = group_of.iter().copied().max().map_or(0, |m| m + 1);
        FieldGrouping { group_of, groups }
    }

    /// The shadow group of field `f`.
    #[inline]
    pub fn group(&self, f: u32) -> u32 {
        self.group_of.get(f as usize).copied().unwrap_or(f)
    }

    /// True if this grouping actually compresses anything.
    pub fn compresses(&self) -> bool {
        (self.groups as usize) < self.group_of.len()
    }
}

/// Shadow state for one object: one [`VarState`] per field group.
#[derive(Debug, Clone)]
pub struct ObjectShadow {
    states: Vec<VarState>,
}

impl ObjectShadow {
    /// Creates shadow state with `groups` shadow locations.
    pub fn new(groups: u32) -> ObjectShadow {
        ObjectShadow {
            states: vec![VarState::new(); groups.max(1) as usize],
        }
    }

    /// Applies a check to the given group.
    ///
    /// # Errors
    ///
    /// Returns the detected race, if any.
    #[inline]
    pub fn apply(
        &mut self,
        group: u32,
        kind: AccessKind,
        t: Tid,
        clock: &VectorClock,
    ) -> Result<(), RaceInfo> {
        let idx = (group as usize).min(self.states.len() - 1);
        self.states[idx].apply(kind, t, clock)
    }

    /// Number of shadow locations.
    pub fn locations(&self) -> usize {
        self.states.len()
    }

    /// Space in clock-entry units (Table 2 accounting).
    pub fn space_units(&self) -> usize {
        self.states.iter().map(VarState::space_units).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(t: Tid, v: u32) -> VectorClock {
        let mut c = VectorClock::new();
        c.set(t, v);
        c
    }

    #[test]
    fn identity_grouping() {
        let g = FieldGrouping::identity(3);
        assert_eq!(g.groups, 3);
        assert_eq!(g.group(2), 2);
        assert!(!g.compresses());
    }

    #[test]
    fn compressed_grouping() {
        // x, y, z all share group 0 (the Point example).
        let g = FieldGrouping::from_assignment(vec![0, 0, 0]);
        assert_eq!(g.groups, 1);
        assert!(g.compresses());
        assert_eq!(g.group(2), 0);
    }

    #[test]
    fn object_shadow_detects_races_per_group() {
        let mut sh = ObjectShadow::new(2);
        sh.apply(0, AccessKind::Write, Tid(0), &clock(Tid(0), 1))
            .unwrap();
        // Disjoint group: no race.
        sh.apply(1, AccessKind::Write, Tid(1), &clock(Tid(1), 1))
            .unwrap();
        // Same group, unordered: race.
        let err = sh
            .apply(0, AccessKind::Write, Tid(1), &clock(Tid(1), 1))
            .unwrap_err();
        assert_eq!(err.prior_tid, Tid(0));
    }

    #[test]
    fn space_shrinks_with_grouping() {
        let fine = ObjectShadow::new(8);
        let compressed = ObjectShadow::new(1);
        assert!(compressed.space_units() < fine.space_units());
    }
}
