//! Compact serialized trace format for record-once / replay-many
//! detection.
//!
//! The interpreter's [`Event`] stream can be captured by a [`TraceWriter`]
//! (an [`EventSink`]) into a flat byte buffer, then replayed any number of
//! times — by the serial [`Detector`](../../bigfoot_detectors/struct.Detector.html)
//! or by the parallel sharded replay engine in `bigfoot-detectors` —
//! without re-running the program. Recording is cheap enough to leave on:
//! one tag byte plus LEB128 varints per event, no allocation beyond the
//! growing buffer.
//!
//! Layout:
//!
//! ```text
//! magic "BFTR" | version u8 | event*      (no length prefix; EOF ends it)
//! event := tag u8, payload varints (see `encode_event`)
//! ```
//!
//! Unsigned fields are LEB128 varints; signed array indices/bounds are
//! zigzag-encoded first. The decoder entry points ([`read_header`],
//! [`read_event`]) live here next to the encoder so the two cannot drift;
//! the replay engine's `TraceReader` in `bigfoot-detectors` wraps them
//! into an iterator.

use crate::event::{ArrId, CheckTarget, ConcreteRange, Event, EventSink, Loc, ObjId};
use bigfoot_vc::{AccessKind, Tid};

pub mod compress;

/// File magic for serialized traces.
pub const TRACE_MAGIC: [u8; 4] = *b"BFTR";

/// Current trace format version.
pub const TRACE_VERSION: u8 = 1;

/// Event tag bytes (one per [`Event`] variant).
const TAG_ALLOC_OBJ: u8 = 0;
const TAG_ALLOC_ARR: u8 = 1;
const TAG_ACCESS: u8 = 2;
const TAG_CHECK: u8 = 3;
const TAG_VOLATILE_READ: u8 = 4;
const TAG_VOLATILE_WRITE: u8 = 5;
const TAG_ACQUIRE: u8 = 6;
const TAG_RELEASE: u8 = 7;
const TAG_FORK: u8 = 8;
const TAG_JOIN: u8 = 9;
const TAG_THREAD_EXIT: u8 = 10;

/// A malformed or truncated serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The header's version byte is not [`TRACE_VERSION`].
    UnsupportedVersion(u8),
    /// The buffer ended mid-event.
    Truncated {
        /// Byte offset where decoding stopped.
        offset: usize,
    },
    /// An unknown tag byte was encountered.
    BadTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The offending byte.
        tag: u8,
    },
    /// A decoded range carried a non-positive stride. Strides are
    /// validated at parse time, so this only arises from corrupt or
    /// hand-crafted traces — rejecting it here keeps `step >= 1` an
    /// invariant every detector downstream may rely on (a zero stride
    /// would otherwise divide-by-zero in shadow clamping).
    InvalidStride {
        /// Byte offset just past the offending range.
        offset: usize,
        /// The decoded stride.
        step: i64,
    },
    /// A compressed-container rule referenced a symbol that does not
    /// exist yet. Rules may only reference dictionary entries and
    /// *earlier* rules, which makes every accepted grammar acyclic by
    /// construction — self-references and forward references land here.
    BadRuleRef {
        /// Index of the offending rule (or `u64::MAX` for the top-level
        /// sequence).
        rule: u64,
        /// The out-of-range symbol.
        sym: u64,
    },
    /// A compressed-container run carried a zero repeat count.
    BadCount {
        /// Index of the offending rule (or `u64::MAX` for the top-level
        /// sequence).
        rule: u64,
    },
    /// A compressed container claims an expansion larger than the
    /// decoder is willing to materialize (or its run counts overflow).
    OversizedExpansion {
        /// The claimed number of expanded events.
        claimed: u64,
    },
    /// The compressed container's header-declared event total does not
    /// match the grammar's actual expansion size.
    ExpansionMismatch {
        /// Event count declared in the container header.
        claimed: u64,
        /// Event count the grammar actually expands to.
        actual: u64,
    },
    /// A compressed-container rule chain nests deeper than
    /// [`compress::MAX_RULE_DEPTH`], which would make expansion
    /// recursion unsafe.
    RuleTooDeep {
        /// Index of the offending rule.
        rule: u64,
    },
    /// Bytes remained after the last structural element of a compressed
    /// container. BFTR streams are length-free, but BFTC containers are
    /// fully structured, so trailing garbage is always an error.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a BFTR trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {TRACE_VERSION})"
                )
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated at byte {offset}")
            }
            TraceError::BadTag { offset, tag } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            TraceError::InvalidStride { offset, step } => {
                write!(f, "non-positive range stride {step} at byte {offset}")
            }
            TraceError::BadRuleRef { rule, sym } => {
                if *rule == u64::MAX {
                    write!(f, "top-level sequence references undefined symbol {sym}")
                } else {
                    write!(f, "rule {rule} references undefined symbol {sym}")
                }
            }
            TraceError::BadCount { rule } => {
                if *rule == u64::MAX {
                    write!(f, "zero repeat count in top-level sequence")
                } else {
                    write!(f, "zero repeat count in rule {rule}")
                }
            }
            TraceError::OversizedExpansion { claimed } => {
                write!(
                    f,
                    "compressed trace claims oversized expansion ({claimed} events)"
                )
            }
            TraceError::ExpansionMismatch { claimed, actual } => {
                write!(
                    f,
                    "compressed trace declares {claimed} events but expands to {actual}"
                )
            }
            TraceError::RuleTooDeep { rule } => {
                write!(f, "rule {rule} nests deeper than the expansion limit")
            }
            TraceError::TrailingBytes { offset } => {
                write!(
                    f,
                    "trailing bytes after compressed trace at offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

// ---------------- varint primitives ----------------

pub(crate) fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    put_u64(buf, v as u64);
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    // Zigzag: small magnitudes (of either sign) stay short.
    put_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

pub(crate) fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or(TraceError::Truncated { offset: *pos })?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Truncated { offset: *pos });
        }
    }
}

pub(crate) fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, TraceError> {
    Ok(get_u64(bytes, pos)? as u32)
}

pub(crate) fn get_i64(bytes: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    let z = get_u64(bytes, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn put_kind(buf: &mut Vec<u8>, kind: AccessKind) {
    buf.push(match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    });
}

fn get_kind(bytes: &[u8], pos: &mut usize) -> Result<AccessKind, TraceError> {
    let byte = *bytes
        .get(*pos)
        .ok_or(TraceError::Truncated { offset: *pos })?;
    *pos += 1;
    match byte {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        tag => Err(TraceError::BadTag {
            offset: *pos - 1,
            tag,
        }),
    }
}

fn put_range(buf: &mut Vec<u8>, r: &ConcreteRange) {
    put_i64(buf, r.lo);
    put_i64(buf, r.hi);
    put_i64(buf, r.step);
}

fn get_range(bytes: &[u8], pos: &mut usize) -> Result<ConcreteRange, TraceError> {
    let r = ConcreteRange {
        lo: get_i64(bytes, pos)?,
        hi: get_i64(bytes, pos)?,
        step: get_i64(bytes, pos)?,
    };
    if r.step < 1 {
        return Err(TraceError::InvalidStride {
            offset: *pos,
            step: r.step,
        });
    }
    Ok(r)
}

// ---------------- event codec ----------------

/// Appends one encoded event to `buf`.
pub fn encode_event(buf: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::AllocObj {
            t,
            obj,
            class,
            fields,
        } => {
            buf.push(TAG_ALLOC_OBJ);
            put_u32(buf, t.0);
            put_u32(buf, obj.0);
            put_u32(buf, *class);
            put_u32(buf, *fields);
        }
        Event::AllocArr { t, arr, len } => {
            buf.push(TAG_ALLOC_ARR);
            put_u32(buf, t.0);
            put_u32(buf, arr.0);
            put_u64(buf, *len);
        }
        Event::Access { t, kind, loc } => {
            buf.push(TAG_ACCESS);
            put_u32(buf, t.0);
            put_kind(buf, *kind);
            match loc {
                Loc::Field(obj, f) => {
                    buf.push(0);
                    put_u32(buf, obj.0);
                    put_u32(buf, *f);
                }
                Loc::Elem(arr, i) => {
                    buf.push(1);
                    put_u32(buf, arr.0);
                    put_i64(buf, *i);
                }
            }
        }
        Event::Check { t, paths } => {
            buf.push(TAG_CHECK);
            put_u32(buf, t.0);
            put_u64(buf, paths.len() as u64);
            for (kind, target) in paths {
                put_kind(buf, *kind);
                match target {
                    CheckTarget::Fields(obj, idxs) => {
                        buf.push(0);
                        put_u32(buf, obj.0);
                        put_u64(buf, idxs.len() as u64);
                        for f in idxs {
                            put_u32(buf, *f);
                        }
                    }
                    CheckTarget::Range(arr, r) => {
                        buf.push(1);
                        put_u32(buf, arr.0);
                        put_range(buf, r);
                    }
                }
            }
        }
        Event::VolatileRead { t, obj, field } => {
            buf.push(TAG_VOLATILE_READ);
            put_u32(buf, t.0);
            put_u32(buf, obj.0);
            put_u32(buf, *field);
        }
        Event::VolatileWrite { t, obj, field } => {
            buf.push(TAG_VOLATILE_WRITE);
            put_u32(buf, t.0);
            put_u32(buf, obj.0);
            put_u32(buf, *field);
        }
        Event::Acquire { t, lock } => {
            buf.push(TAG_ACQUIRE);
            put_u32(buf, t.0);
            put_u32(buf, lock.0);
        }
        Event::Release { t, lock } => {
            buf.push(TAG_RELEASE);
            put_u32(buf, t.0);
            put_u32(buf, lock.0);
        }
        Event::Fork { parent, child } => {
            buf.push(TAG_FORK);
            put_u32(buf, parent.0);
            put_u32(buf, child.0);
        }
        Event::Join { parent, child } => {
            buf.push(TAG_JOIN);
            put_u32(buf, parent.0);
            put_u32(buf, child.0);
        }
        Event::ThreadExit { t } => {
            buf.push(TAG_THREAD_EXIT);
            put_u32(buf, t.0);
        }
    }
}

/// Validates the trace header and returns the offset of the first event.
pub fn read_header(bytes: &[u8]) -> Result<usize, TraceError> {
    if bytes.len() < TRACE_MAGIC.len() + 1 || bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = bytes[TRACE_MAGIC.len()];
    if version != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(TRACE_MAGIC.len() + 1)
}

/// Decodes the event at `*pos`, advancing `*pos` past it. Returns
/// `Ok(None)` at a clean end of buffer.
pub fn read_event(bytes: &[u8], pos: &mut usize) -> Result<Option<Event>, TraceError> {
    let Some(&tag) = bytes.get(*pos) else {
        return Ok(None);
    };
    let tag_offset = *pos;
    *pos += 1;
    let ev = match tag {
        TAG_ALLOC_OBJ => Event::AllocObj {
            t: Tid(get_u32(bytes, pos)?),
            obj: ObjId(get_u32(bytes, pos)?),
            class: get_u32(bytes, pos)?,
            fields: get_u32(bytes, pos)?,
        },
        TAG_ALLOC_ARR => Event::AllocArr {
            t: Tid(get_u32(bytes, pos)?),
            arr: ArrId(get_u32(bytes, pos)?),
            len: get_u64(bytes, pos)?,
        },
        TAG_ACCESS => {
            let t = Tid(get_u32(bytes, pos)?);
            let kind = get_kind(bytes, pos)?;
            let subtag = *bytes
                .get(*pos)
                .ok_or(TraceError::Truncated { offset: *pos })?;
            *pos += 1;
            let loc = match subtag {
                0 => Loc::Field(ObjId(get_u32(bytes, pos)?), get_u32(bytes, pos)?),
                1 => Loc::Elem(ArrId(get_u32(bytes, pos)?), get_i64(bytes, pos)?),
                tag => {
                    return Err(TraceError::BadTag {
                        offset: *pos - 1,
                        tag,
                    })
                }
            };
            Event::Access { t, kind, loc }
        }
        TAG_CHECK => {
            let t = Tid(get_u32(bytes, pos)?);
            let n = get_u64(bytes, pos)? as usize;
            // The length words are untrusted input: a corrupt trace can
            // claim billions of paths. Every path costs at least one
            // byte, so capping the pre-allocation at the bytes actually
            // remaining keeps a bogus length from allocating gigabytes
            // before the loop below hits `Truncated`.
            let mut paths = Vec::with_capacity(n.min(bytes.len().saturating_sub(*pos)));
            for _ in 0..n {
                let kind = get_kind(bytes, pos)?;
                let subtag = *bytes
                    .get(*pos)
                    .ok_or(TraceError::Truncated { offset: *pos })?;
                *pos += 1;
                let target = match subtag {
                    0 => {
                        let obj = ObjId(get_u32(bytes, pos)?);
                        let k = get_u64(bytes, pos)? as usize;
                        let mut idxs = Vec::with_capacity(k.min(bytes.len().saturating_sub(*pos)));
                        for _ in 0..k {
                            idxs.push(get_u32(bytes, pos)?);
                        }
                        CheckTarget::Fields(obj, idxs)
                    }
                    1 => CheckTarget::Range(ArrId(get_u32(bytes, pos)?), get_range(bytes, pos)?),
                    tag => {
                        return Err(TraceError::BadTag {
                            offset: *pos - 1,
                            tag,
                        })
                    }
                };
                paths.push((kind, target));
            }
            Event::Check { t, paths }
        }
        TAG_VOLATILE_READ => Event::VolatileRead {
            t: Tid(get_u32(bytes, pos)?),
            obj: ObjId(get_u32(bytes, pos)?),
            field: get_u32(bytes, pos)?,
        },
        TAG_VOLATILE_WRITE => Event::VolatileWrite {
            t: Tid(get_u32(bytes, pos)?),
            obj: ObjId(get_u32(bytes, pos)?),
            field: get_u32(bytes, pos)?,
        },
        TAG_ACQUIRE => Event::Acquire {
            t: Tid(get_u32(bytes, pos)?),
            lock: ObjId(get_u32(bytes, pos)?),
        },
        TAG_RELEASE => Event::Release {
            t: Tid(get_u32(bytes, pos)?),
            lock: ObjId(get_u32(bytes, pos)?),
        },
        TAG_FORK => Event::Fork {
            parent: Tid(get_u32(bytes, pos)?),
            child: Tid(get_u32(bytes, pos)?),
        },
        TAG_JOIN => Event::Join {
            parent: Tid(get_u32(bytes, pos)?),
            child: Tid(get_u32(bytes, pos)?),
        },
        TAG_THREAD_EXIT => Event::ThreadExit {
            t: Tid(get_u32(bytes, pos)?),
        },
        tag => {
            return Err(TraceError::BadTag {
                offset: tag_offset,
                tag,
            })
        }
    };
    Ok(Some(ev))
}

/// An [`EventSink`] that serializes the stream into a trace buffer.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, trace, Interp, SchedPolicy};
///
/// let p = parse_program("main { a = new_array(4); a[0] = 1; }")?;
/// let mut w = trace::TraceWriter::new();
/// Interp::new(&p, SchedPolicy::default()).run(&mut w)?;
/// let bytes = w.into_bytes();
/// let start = trace::read_header(&bytes)?;
/// let mut pos = start;
/// let mut events = 0;
/// while trace::read_event(&bytes, &mut pos)?.is_some() {
///     events += 1;
/// }
/// assert!(events >= 3); // alloc, access, thread exit
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    buf: Vec<u8>,
    /// Per-event encode scratch, reused across the whole recording so the
    /// steady-state encode path performs no allocation of its own: the
    /// event is encoded into `scratch` (whose capacity persists) and then
    /// copied into `buf` in one `extend_from_slice`.
    scratch: Vec<u8>,
    events: u64,
    /// Payload bytes encoded since the last flush to the
    /// `trace.bytes_written` obs counter (flushed when the writer is
    /// consumed or dropped — including a drop during unwind from a failed
    /// run, so partial recordings are accounted too).
    unflushed_bytes: u64,
}

impl TraceWriter {
    /// Creates a writer with the header already emitted.
    pub fn new() -> TraceWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.push(TRACE_VERSION);
        TraceWriter {
            buf,
            scratch: Vec::with_capacity(64),
            events: 0,
            unflushed_bytes: 0,
        }
    }

    /// Number of events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Size of the encoded trace so far, in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Event payload bytes written so far (the trace size minus the
    /// header). This is exactly what the `trace.bytes_written` counter
    /// accumulates, so the two can be cross-checked.
    pub fn bytes_written(&self) -> u64 {
        (self.buf.len() - TRACE_MAGIC.len() - 1) as u64
    }

    /// True if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Consumes the writer, returning the serialized trace.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.flush_bytes();
        std::mem::take(&mut self.buf)
    }

    fn flush_bytes(&mut self) {
        if self.unflushed_bytes != 0 {
            bigfoot_obs::count_named("trace.bytes_written", self.unflushed_bytes);
            self.unflushed_bytes = 0;
        }
    }
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.flush_bytes();
    }
}

impl EventSink for TraceWriter {
    fn event(&mut self, ev: &Event) {
        self.scratch.clear();
        encode_event(&mut self.scratch, ev);
        self.buf.extend_from_slice(&self.scratch);
        self.unflushed_bytes += self.scratch.len() as u64;
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, Interp, RecordingSink, SchedPolicy};

    fn decode_all(bytes: &[u8]) -> Vec<Event> {
        let mut pos = read_header(bytes).expect("header");
        let mut out = Vec::new();
        while let Some(ev) = read_event(bytes, &mut pos).expect("event") {
            out.push(ev);
        }
        out
    }

    #[test]
    fn decoding_rejects_non_positive_strides() {
        // `encode_event` is trusted (the interpreter never emits such a
        // range), but a corrupt or crafted trace must not smuggle a
        // zero/negative stride past the decoder.
        for step in [0i64, -2] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&TRACE_MAGIC);
            buf.push(TRACE_VERSION);
            encode_event(
                &mut buf,
                &Event::Check {
                    t: Tid(0),
                    paths: vec![(
                        AccessKind::Read,
                        CheckTarget::Range(ArrId(0), ConcreteRange { lo: 0, hi: 8, step }),
                    )],
                },
            );
            let mut pos = read_header(&buf).expect("header");
            assert!(
                matches!(
                    read_event(&buf, &mut pos),
                    Err(TraceError::InvalidStride { step: s, .. }) if s == step
                ),
                "stride {step} must be rejected"
            );
        }
    }

    #[test]
    fn roundtrip_every_variant() {
        let events = vec![
            Event::AllocObj {
                t: Tid(0),
                obj: ObjId(7),
                class: 2,
                fields: 3,
            },
            Event::AllocArr {
                t: Tid(1),
                arr: ArrId(4),
                len: 1_000_000,
            },
            Event::Access {
                t: Tid(2),
                kind: AccessKind::Read,
                loc: Loc::Field(ObjId(7), 1),
            },
            Event::Access {
                t: Tid(2),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(4), -3),
            },
            Event::Check {
                t: Tid(0),
                paths: vec![
                    (AccessKind::Write, CheckTarget::Fields(ObjId(7), vec![0, 2])),
                    (
                        AccessKind::Read,
                        CheckTarget::Range(
                            ArrId(4),
                            ConcreteRange {
                                lo: 0,
                                hi: 100,
                                step: 3,
                            },
                        ),
                    ),
                ],
            },
            Event::VolatileRead {
                t: Tid(1),
                obj: ObjId(9),
                field: 0,
            },
            Event::VolatileWrite {
                t: Tid(1),
                obj: ObjId(9),
                field: 0,
            },
            Event::Acquire {
                t: Tid(3),
                lock: ObjId(5),
            },
            Event::Release {
                t: Tid(3),
                lock: ObjId(5),
            },
            Event::Fork {
                parent: Tid(0),
                child: Tid(3),
            },
            Event::Join {
                parent: Tid(0),
                child: Tid(3),
            },
            Event::ThreadExit { t: Tid(3) },
        ];
        let mut w = TraceWriter::new();
        for ev in &events {
            w.event(ev);
        }
        assert_eq!(w.events(), events.len() as u64);
        let bytes = w.into_bytes();
        assert_eq!(decode_all(&bytes), events);
    }

    #[test]
    fn recorded_trace_matches_recording_sink() {
        let p = parse_program(
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 a = new_array(8);
                 for (i = 0; i < 8; i = i + 1) { a[i] = i; }
                 fork t1 = c.poke(1);
                 join(t1);
             }",
        )
        .expect("parse");
        let mut rec = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut rec)
            .expect("run");
        let mut w = TraceWriter::new();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut w)
            .expect("run");
        assert_eq!(decode_all(&w.into_bytes()), rec.events);
    }

    #[test]
    fn header_is_validated() {
        assert_eq!(read_header(b"nope"), Err(TraceError::BadMagic));
        assert_eq!(
            read_header(b"BFTR\x63"),
            Err(TraceError::UnsupportedVersion(0x63))
        );
        let w = TraceWriter::new();
        let bytes = w.into_bytes();
        let mut pos = read_header(&bytes).expect("header");
        assert_eq!(read_event(&bytes, &mut pos), Ok(None));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = TraceWriter::new();
        w.event(&Event::AllocArr {
            t: Tid(0),
            arr: ArrId(1),
            len: 300,
        });
        let bytes = w.into_bytes();
        let cut = &bytes[..bytes.len() - 1];
        let mut pos = read_header(cut).expect("header");
        assert!(matches!(
            read_event(cut, &mut pos),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn scratch_encode_is_byte_identical_to_direct_encode() {
        // The writer stages each event through a reused scratch buffer;
        // the resulting trace must match encoding straight into one
        // buffer, and the byte accounting must match the buffer growth.
        let p = parse_program(
            "class C { field x; meth poke(v) { this.x = v; return 0; } }
             main {
                 c = new C;
                 a = new_array(16);
                 for (i = 0; i < 16; i = i + 1) { a[i] = i; }
                 fork t1 = c.poke(1);
                 join(t1);
             }",
        )
        .expect("parse");
        let mut rec = RecordingSink::default();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut rec)
            .expect("run");
        let mut direct = Vec::new();
        direct.extend_from_slice(&TRACE_MAGIC);
        direct.push(TRACE_VERSION);
        for ev in &rec.events {
            encode_event(&mut direct, ev);
        }
        let mut w = TraceWriter::new();
        for ev in &rec.events {
            w.event(ev);
        }
        assert_eq!(w.bytes_written(), (direct.len() - 5) as u64);
        assert_eq!(w.into_bytes(), direct);
    }

    #[test]
    fn varints_keep_small_traces_small() {
        let mut w = TraceWriter::new();
        for i in 0..100 {
            w.event(&Event::Access {
                t: Tid(0),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(0), i),
            });
        }
        // Tag + tid + kind + subtag + arr + zigzag index: at most 7
        // bytes/event for indices below 100.
        assert!(w.len() <= 5 + 100 * 7, "trace too large: {}", w.len());
    }
}
