//! Grammar-compressed trace container (`BFTC`).
//!
//! Loop-heavy BFJ traces are extremely repetitive: crypt's block
//! traversals and lufact's triangular sweeps emit the *same* handful of
//! event shapes millions of times, differing only in the array index.
//! This module exploits that in two steps:
//!
//! 1. **Delta transform + dictionary.** Each event is rewritten so that
//!    array-element access indices are delta-encoded per `(thread,
//!    array)` stream (a stride-1 loop becomes the same `+1` token every
//!    iteration), then interned into a dictionary of distinct encoded
//!    events. The trace body becomes a sequence of small symbol ids.
//! 2. **RLE + tandem-repeat grammar.** The symbol sequence is run-length
//!    collapsed, then repeatedly scanned for tandem repeats (`abcabcabc`
//!    with period ≤ [`MAX_PERIOD`]); each repeated block is extracted
//!    into a straight-line-program rule and replaced by one
//!    `(rule, count)` pair. Rounds nest, so a loop nest collapses into a
//!    rule hierarchy.
//!
//! The result is a fully structured, versioned container:
//!
//! ```text
//! magic "BFTC" | version u8
//! | dict_len varint   | event*            (BFTR event encoding, delta form)
//! | rule_count varint | rule*             (rule := npairs varint, pair*)
//! | top_npairs varint | pair*             (pair := sym varint, count varint)
//! | total_events varint                   (must equal the expansion size)
//! ```
//!
//! Symbols `0..dict_len` are dictionary entries; symbol `dict_len + i`
//! is rule `i`. A rule may reference only dictionary entries and
//! *earlier* rules, so every accepted grammar is acyclic by
//! construction. The decoder validates counts, symbol references,
//! expansion size and nesting depth up front ([`read_compressed`]), so
//! expansion ([`decompress_to`]) cannot run away on crafted input.
//!
//! Compressed detection in `bigfoot-detectors` walks this grammar
//! directly (memoizing pure rules) instead of expanding it; the
//! byte-stream round trip ([`compress`] / [`decompress`]) is pinned
//! exact by tests and the fuzz oracle.

use super::{
    encode_event, get_u64, put_u64, read_event, read_header, TraceError, TRACE_MAGIC, TRACE_VERSION,
};
use crate::event::{Event, EventSink, Loc};
use bigfoot_obs::fx::FxHashMap;

/// File magic for compressed trace containers.
pub const COMPRESSED_MAGIC: [u8; 4] = *b"BFTC";

/// Current compressed container version.
pub const COMPRESSED_VERSION: u8 = 1;

/// Maximum rule nesting depth the decoder accepts. Expansion recurses
/// at most this deep, so the bound doubles as a stack-safety guarantee.
pub const MAX_RULE_DEPTH: u32 = 64;

/// Maximum number of expanded events a container may claim (2^40, far
/// above any real trace but small enough that size arithmetic cannot
/// overflow when multiplied by per-event costs).
pub const MAX_EXPANSION: u64 = 1 << 40;

/// Longest tandem-repeat period (in `(sym, count)` pairs) the builder
/// searches for per round. Longer loop bodies are still caught once
/// inner rounds have collapsed their repetitive interior.
const MAX_PERIOD: usize = 64;

/// Maximum grammar-build rounds. Each round can only nest rules one
/// level deeper, so this also bounds produced rule depth well below
/// [`MAX_RULE_DEPTH`].
const MAX_ROUNDS: usize = 12;

/// One `(symbol, repeat-count)` run in a rule body or the top sequence.
pub type Pair = (u64, u64);

/// Tracks the per-`(thread, array)` last element index so access events
/// can be delta-encoded (and decoded) symmetrically. The transform is
/// wrapping in both directions, so it is exact for any `i64` index.
#[derive(Debug, Default, Clone)]
pub struct DeltaState {
    last: FxHashMap<(u32, u32), i64>,
}

impl DeltaState {
    /// Rewrites an absolute-index event into delta form.
    pub fn encode(&mut self, ev: &Event) -> Event {
        match ev {
            Event::Access {
                t,
                kind,
                loc: Loc::Elem(arr, i),
            } => {
                let slot = self.last.entry((t.0, arr.0)).or_insert(0);
                let d = i.wrapping_sub(*slot);
                *slot = *i;
                Event::Access {
                    t: *t,
                    kind: *kind,
                    loc: Loc::Elem(*arr, d),
                }
            }
            _ => ev.clone(),
        }
    }

    /// Rewrites a delta-form event back into absolute-index form.
    pub fn decode(&mut self, ev: &Event) -> Event {
        match ev {
            Event::Access {
                t,
                kind,
                loc: Loc::Elem(arr, d),
            } => {
                let slot = self.last.entry((t.0, arr.0)).or_insert(0);
                let i = slot.wrapping_add(*d);
                *slot = i;
                Event::Access {
                    t: *t,
                    kind: *kind,
                    loc: Loc::Elem(*arr, i),
                }
            }
            _ => ev.clone(),
        }
    }

    /// Advances the `(thread, array)` stream position by `delta` without
    /// materializing events — used by the memoized compressed-replay
    /// walker when it skips whole rule repetitions.
    pub fn advance(&mut self, t: u32, arr: u32, delta: i64) {
        let slot = self.last.entry((t, arr)).or_insert(0);
        *slot = slot.wrapping_add(delta);
    }
}

/// A parsed, fully validated compressed trace.
///
/// Invariants established by [`read_compressed`] (and by construction in
/// the writer): every symbol reference points at a dictionary entry or
/// an earlier rule; every count is ≥ 1; the expansion totals
/// [`CompressedTrace::total_events`] ≤ [`MAX_EXPANSION`]; rule nesting
/// is ≤ [`MAX_RULE_DEPTH`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedTrace {
    /// Distinct delta-form events, indexed by symbol id.
    pub dict: Vec<Event>,
    /// Grammar rules; rule `i` is symbol `dict.len() + i`.
    pub rules: Vec<Vec<Pair>>,
    /// The top-level run sequence.
    pub top: Vec<Pair>,
    /// Total number of events the container expands to.
    pub total_events: u64,
}

impl CompressedTrace {
    /// True if `sym` names a rule (as opposed to a dictionary entry).
    pub fn is_rule(&self, sym: u64) -> bool {
        sym >= self.dict.len() as u64
    }

    /// The body of rule symbol `sym` (panics if `sym` is a terminal).
    pub fn rule_body(&self, sym: u64) -> &[Pair] {
        &self.rules[(sym - self.dict.len() as u64) as usize]
    }
}

// ---------------- grammar builder ----------------

/// Appends `(sym, count)` to `out`, merging with the previous pair when
/// it carries the same symbol (`(s,a)(s,b)` expands identically to
/// `(s,a+b)`).
fn push_run(out: &mut Vec<Pair>, sym: u64, count: u64) {
    if let Some(last) = out.last_mut() {
        if last.0 == sym {
            last.1 += count;
            return;
        }
    }
    out.push((sym, count));
}

/// One tandem-repeat collapse round: scans `pairs` left to right, finds
/// the smallest period `p ≤ MAX_PERIOD` repeating at least twice,
/// extracts the block as a rule (deduplicated through `body_index`) and
/// replaces the whole run with a single `(rule, k)` pair.
fn tandem_round(
    pairs: &[Pair],
    rules: &mut Vec<Vec<Pair>>,
    body_index: &mut FxHashMap<Vec<Pair>, u64>,
    dict_len: u64,
    period_cap: usize,
) -> Vec<Pair> {
    let n = pairs.len();
    let mut out = Vec::with_capacity(n / 2 + 1);
    let mut i = 0;
    while i < n {
        let max_p = period_cap.min((n - i) / 2);
        let mut found = None;
        for p in 2..=max_p {
            if pairs[i..i + p] == pairs[i + p..i + 2 * p] {
                found = Some(p);
                break;
            }
        }
        match found {
            None => {
                push_run(&mut out, pairs[i].0, pairs[i].1);
                i += 1;
            }
            Some(p) => {
                let mut k = 2;
                while i + (k + 1) * p <= n && pairs[i + k * p..i + (k + 1) * p] == pairs[i..i + p] {
                    k += 1;
                }
                let body = pairs[i..i + p].to_vec();
                let sym = *body_index.entry(body.clone()).or_insert_with(|| {
                    rules.push(body);
                    dict_len + rules.len() as u64 - 1
                });
                push_run(&mut out, sym, k as u64);
                i += k * p;
            }
        }
    }
    out
}

// ---------------- writer ----------------

/// An [`EventSink`] that tokenizes the stream on the fly and emits a
/// `BFTC` container from [`CompressedTraceWriter::into_bytes`].
///
/// Drop-in compatible with [`TraceWriter`](super::TraceWriter): record
/// through it, then feed the bytes to `replay_compressed` (or
/// [`decompress`] them back into an exact `BFTR` stream).
#[derive(Debug, Default)]
pub struct CompressedTraceWriter {
    delta: DeltaState,
    dict: Vec<Event>,
    dict_index: FxHashMap<Vec<u8>, u64>,
    tokens: Vec<u64>,
    scratch: Vec<u8>,
    events: u64,
    raw_bytes: u64,
}

impl CompressedTraceWriter {
    /// Creates an empty writer.
    pub fn new() -> CompressedTraceWriter {
        CompressedTraceWriter::default()
    }

    /// Number of events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// True if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Bytes the equivalent *uncompressed* `BFTR` payload would occupy
    /// (used for ratio reporting).
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Builds the grammar and serializes the container, flushing the
    /// `trace.*` compression counters.
    pub fn into_bytes(self) -> Vec<u8> {
        let dict_len = self.dict.len() as u64;

        // Seed run: RLE over the raw token sequence.
        let mut pairs: Vec<Pair> = Vec::new();
        for &tok in &self.tokens {
            push_run(&mut pairs, tok, 1);
        }

        // Tandem rounds until fixpoint. The period cap grows 2, 4, 8, …
        // per round so tight inner repeats collapse before longer
        // periods are considered — a greedy left-to-right scan would
        // otherwise capture a misaligned outer block (e.g. `C(AB)^8`
        // instead of `(AB)^8 C`) and freeze the interior uncompressed.
        let mut rules: Vec<Vec<Pair>> = Vec::new();
        let mut body_index: FxHashMap<Vec<Pair>, u64> = FxHashMap::default();
        let mut period_cap = 2usize;
        for _ in 0..MAX_ROUNDS {
            let before = pairs.len();
            pairs = tandem_round(&pairs, &mut rules, &mut body_index, dict_len, period_cap);
            if pairs.len() == before && period_cap >= MAX_PERIOD {
                break;
            }
            period_cap = (period_cap * 2).min(MAX_PERIOD);
        }

        let mut buf = Vec::with_capacity(64 + self.dict.len() * 8 + pairs.len() * 4);
        buf.extend_from_slice(&COMPRESSED_MAGIC);
        buf.push(COMPRESSED_VERSION);
        put_u64(&mut buf, dict_len);
        for ev in &self.dict {
            encode_event(&mut buf, ev);
        }
        put_u64(&mut buf, rules.len() as u64);
        let mut rule_hits = 0u64;
        let put_pairs = |buf: &mut Vec<u8>, body: &[Pair], hits: &mut u64| {
            put_u64(buf, body.len() as u64);
            for &(sym, count) in body {
                if sym >= dict_len {
                    *hits += count;
                }
                put_u64(buf, sym);
                put_u64(buf, count);
            }
        };
        for rule in &rules {
            put_pairs(&mut buf, rule, &mut rule_hits);
        }
        put_pairs(&mut buf, &pairs, &mut rule_hits);
        put_u64(&mut buf, self.events);

        let payload = (buf.len() - COMPRESSED_MAGIC.len() - 1) as u64;
        bigfoot_obs::count_named("trace.compressed_bytes", payload);
        bigfoot_obs::count_named("trace.rules", rules.len() as u64);
        bigfoot_obs::count_named("trace.rule_hits", rule_hits);
        // Permille so sub-10x ratios survive integer truncation.
        if let Some(ratio) = self.raw_bytes.saturating_mul(1000).checked_div(payload) {
            bigfoot_obs::gauge_max_named("trace.compression_ratio_x1000", ratio);
            bigfoot_obs::trace_counter!("trace.compression_ratio_x1000", ratio);
        }
        bigfoot_obs::trace_counter!("trace.compressed_bytes", payload);
        bigfoot_obs::trace_counter!("trace.rules", rules.len() as u64);
        buf
    }
}

impl EventSink for CompressedTraceWriter {
    fn event(&mut self, ev: &Event) {
        self.events += 1;
        // Account the event's raw BFTR size for honest ratio reporting,
        // then intern its delta form.
        self.scratch.clear();
        encode_event(&mut self.scratch, ev);
        self.raw_bytes += self.scratch.len() as u64;
        let dev = self.delta.encode(ev);
        if &dev != ev {
            self.scratch.clear();
            encode_event(&mut self.scratch, &dev);
        }
        let tok = match self.dict_index.get(self.scratch.as_slice()) {
            Some(&tok) => tok,
            None => {
                let tok = self.dict.len() as u64;
                self.dict.push(dev);
                self.dict_index.insert(self.scratch.clone(), tok);
                tok
            }
        };
        self.tokens.push(tok);
    }
}

// ---------------- decoder ----------------

/// True if `bytes` starts with the compressed-container magic. Used to
/// auto-detect `BFTR` vs `BFTC` inputs by sniffing, e.g. on `bfc replay`.
pub fn is_compressed(bytes: &[u8]) -> bool {
    bytes.len() >= COMPRESSED_MAGIC.len() && bytes[..COMPRESSED_MAGIC.len()] == COMPRESSED_MAGIC
}

/// Validates the container header and returns the offset just past it.
pub fn read_compressed_header(bytes: &[u8]) -> Result<usize, TraceError> {
    if bytes.len() < COMPRESSED_MAGIC.len() + 1 || !is_compressed(bytes) {
        return Err(TraceError::BadMagic);
    }
    let version = bytes[COMPRESSED_MAGIC.len()];
    if version != COMPRESSED_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(COMPRESSED_MAGIC.len() + 1)
}

/// Reads one `(npairs, pair*)` body, validating counts and symbol
/// references against the symbols defined so far.
fn read_body(
    bytes: &[u8],
    pos: &mut usize,
    rule: u64,
    defined_syms: u64,
) -> Result<Vec<Pair>, TraceError> {
    let n = get_u64(bytes, pos)? as usize;
    // Length words are untrusted: cap pre-allocation at what the
    // remaining bytes could possibly hold (≥ 2 bytes per pair).
    let mut body = Vec::with_capacity(n.min(bytes.len().saturating_sub(*pos) / 2 + 1));
    for _ in 0..n {
        let sym = get_u64(bytes, pos)?;
        let count = get_u64(bytes, pos)?;
        if sym >= defined_syms {
            return Err(TraceError::BadRuleRef { rule, sym });
        }
        if count == 0 {
            return Err(TraceError::BadCount { rule });
        }
        body.push((sym, count));
    }
    Ok(body)
}

/// Parses and fully validates a `BFTC` container.
///
/// Guarantees on success: acyclic rules (references strictly precede
/// definitions), counts ≥ 1, nesting depth ≤ [`MAX_RULE_DEPTH`],
/// expansion size = `total_events` ≤ [`MAX_EXPANSION`], and no trailing
/// bytes. Corrupt input gets a typed [`TraceError`], never a panic or
/// unbounded allocation.
pub fn read_compressed(bytes: &[u8]) -> Result<CompressedTrace, TraceError> {
    let mut pos = read_compressed_header(bytes)?;

    let dict_len = get_u64(bytes, &mut pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len.min(bytes.len().saturating_sub(pos) + 1));
    for _ in 0..dict_len {
        match read_event(bytes, &mut pos)? {
            Some(ev) => dict.push(ev),
            None => return Err(TraceError::Truncated { offset: pos }),
        }
    }

    let rule_count = get_u64(bytes, &mut pos)? as usize;
    let mut rules = Vec::with_capacity(rule_count.min(bytes.len().saturating_sub(pos) + 1));
    // sizes[sym] / depth[sym] for every defined symbol; terminals are
    // size 1, depth 0.
    let mut sizes: Vec<u64> = vec![1; dict.len()];
    let mut depths: Vec<u32> = vec![0; dict.len()];
    let expand_of = |body: &[Pair], rule: u64, sizes: &[u64], depths: &[u32]| {
        let mut size: u128 = 0;
        let mut depth: u32 = 0;
        for &(sym, count) in body {
            size += sizes[sym as usize] as u128 * count as u128;
            depth = depth.max(depths[sym as usize] + 1);
            if size > MAX_EXPANSION as u128 {
                return Err(TraceError::OversizedExpansion {
                    claimed: size.min(u64::MAX as u128) as u64,
                });
            }
        }
        if depth > MAX_RULE_DEPTH {
            return Err(TraceError::RuleTooDeep { rule });
        }
        Ok((size as u64, depth))
    };
    for i in 0..rule_count {
        let rule = i as u64;
        let body = read_body(bytes, &mut pos, rule, (dict.len() + i) as u64)?;
        let (size, depth) = expand_of(&body, rule, &sizes, &depths)?;
        sizes.push(size);
        depths.push(depth);
        rules.push(body);
    }

    let top = read_body(bytes, &mut pos, u64::MAX, (dict.len() + rules.len()) as u64)?;
    let (actual, _) = expand_of(&top, u64::MAX, &sizes, &depths)?;

    let claimed = get_u64(bytes, &mut pos)?;
    if claimed != actual {
        return Err(TraceError::ExpansionMismatch { claimed, actual });
    }
    if pos != bytes.len() {
        return Err(TraceError::TrailingBytes { offset: pos });
    }
    Ok(CompressedTrace {
        dict,
        rules,
        top,
        total_events: actual,
    })
}

/// Replays a compressed container into any [`EventSink`], undoing the
/// delta transform. Returns the number of events emitted.
pub fn decompress_to<S: EventSink>(bytes: &[u8], sink: &mut S) -> Result<u64, TraceError> {
    let ct = read_compressed(bytes)?;
    let mut delta = DeltaState::default();
    let mut emitted = 0u64;
    for &(sym, count) in &ct.top {
        expand(&ct, sym, count, &mut delta, sink, &mut emitted);
    }
    debug_assert_eq!(emitted, ct.total_events);
    Ok(emitted)
}

/// Expands one `(sym, count)` run into `sink`. Recursion depth is the
/// rule nesting depth, ≤ [`MAX_RULE_DEPTH`] by validation.
fn expand<S: EventSink>(
    ct: &CompressedTrace,
    sym: u64,
    count: u64,
    delta: &mut DeltaState,
    sink: &mut S,
    emitted: &mut u64,
) {
    if ct.is_rule(sym) {
        for _ in 0..count {
            for &(s, c) in ct.rule_body(sym) {
                expand(ct, s, c, delta, sink, emitted);
            }
        }
    } else {
        let template = &ct.dict[sym as usize];
        for _ in 0..count {
            let ev = delta.decode(template);
            sink.event(&ev);
            *emitted += 1;
        }
    }
}

/// Compresses a raw `BFTR` trace into a `BFTC` container.
pub fn compress(raw: &[u8]) -> Result<Vec<u8>, TraceError> {
    if is_compressed(raw) {
        // A BFTC container is not a BFTR stream; make the misuse a typed
        // error instead of a confusing BadMagic from the BFTR header.
        return Err(TraceError::BadMagic);
    }
    let mut pos = read_header(raw)?;
    let mut w = CompressedTraceWriter::new();
    while let Some(ev) = read_event(raw, &mut pos)? {
        w.event(&ev);
    }
    Ok(w.into_bytes())
}

/// Decompresses a `BFTC` container back into an exact `BFTR` byte
/// stream (`decompress(compress(raw)) == raw` for any valid trace).
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, TraceError> {
    struct Raw {
        buf: Vec<u8>,
    }
    impl EventSink for Raw {
        fn event(&mut self, ev: &Event) {
            encode_event(&mut self.buf, ev);
        }
    }
    let mut out = Raw {
        buf: Vec::with_capacity(bytes.len() * 2),
    };
    out.buf.extend_from_slice(&TRACE_MAGIC);
    out.buf.push(TRACE_VERSION);
    decompress_to(bytes, &mut out)?;
    Ok(out.buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrId, ObjId, RecordingSink};
    use crate::trace::TraceWriter;
    use crate::{parse_program, Interp, SchedPolicy};
    use bigfoot_vc::{AccessKind, Tid};

    fn record(src: &str) -> (Vec<u8>, Vec<Event>) {
        let p = parse_program(src).expect("parse");
        let mut w = TraceWriter::new();
        Interp::new(&p, SchedPolicy::default())
            .run(&mut w)
            .expect("run");
        let bytes = w.into_bytes();
        let p2 = parse_program(src).expect("parse");
        let mut rec = RecordingSink::default();
        Interp::new(&p2, SchedPolicy::default())
            .run(&mut rec)
            .expect("run");
        (bytes, rec.events)
    }

    const LOOPY: &str = "main {
        a = new_array(64);
        b = new_array(64);
        for (i = 0; i < 64; i = i + 1) { a[i] = i; b[i] = i; }
        s = 0;
        for (i = 0; i < 64; i = i + 1) { s = s + a[i] + b[i]; }
    }";

    #[test]
    fn roundtrip_is_byte_exact() {
        let (raw, events) = record(LOOPY);
        let compressed = compress(&raw).expect("compress");
        assert_eq!(decompress(&compressed).expect("decompress"), raw);
        let mut rec = RecordingSink::default();
        let n = decompress_to(&compressed, &mut rec).expect("decompress_to");
        assert_eq!(rec.events, events);
        assert_eq!(n, events.len() as u64);
    }

    #[test]
    fn loopy_traces_shrink() {
        let (raw, _) = record(LOOPY);
        let compressed = compress(&raw).expect("compress");
        assert!(
            compressed.len() * 4 < raw.len(),
            "expected ≥4x shrink, got {} -> {}",
            raw.len(),
            compressed.len()
        );
        let ct = read_compressed(&compressed).expect("parse");
        assert!(!ct.rules.is_empty(), "loop body should become a rule");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let raw = TraceWriter::new().into_bytes();
        let compressed = compress(&raw).expect("compress");
        let ct = read_compressed(&compressed).expect("parse");
        assert_eq!(ct.total_events, 0);
        assert_eq!(decompress(&compressed).expect("decompress"), raw);
    }

    #[test]
    fn compressing_a_container_is_rejected() {
        let raw = TraceWriter::new().into_bytes();
        let compressed = compress(&raw).expect("compress");
        assert_eq!(compress(&compressed), Err(TraceError::BadMagic));
        // And the reverse misuse: decompressing a raw trace.
        assert_eq!(decompress(&raw), Err(TraceError::BadMagic));
    }

    #[test]
    fn delta_state_is_symmetric() {
        let evs = vec![
            Event::Access {
                t: Tid(0),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(3), 10),
            },
            Event::Access {
                t: Tid(0),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(3), 11),
            },
            Event::Access {
                t: Tid(1),
                kind: AccessKind::Read,
                loc: Loc::Elem(ArrId(3), -5),
            },
            Event::Access {
                t: Tid(0),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(4), i64::MAX),
            },
            Event::Access {
                t: Tid(0),
                kind: AccessKind::Write,
                loc: Loc::Elem(ArrId(4), i64::MIN),
            },
            Event::Acquire {
                t: Tid(0),
                lock: ObjId(1),
            },
        ];
        let mut enc = DeltaState::default();
        let mut dec = DeltaState::default();
        for ev in &evs {
            let d = enc.encode(ev);
            assert_eq!(&dec.decode(&d), ev);
        }
    }

    #[test]
    fn tandem_rounds_collapse_nested_loops() {
        // Tokens: (AB)^8 C, repeated 5 times — two nesting levels.
        let mut tokens = Vec::new();
        for _ in 0..5 {
            for _ in 0..8 {
                tokens.push(0u64);
                tokens.push(1u64);
            }
            tokens.push(2u64);
        }
        let mut pairs: Vec<Pair> = Vec::new();
        for &t in &tokens {
            push_run(&mut pairs, t, 1);
        }
        let mut rules = Vec::new();
        let mut idx = FxHashMap::default();
        let mut cap = 2usize;
        for _ in 0..MAX_ROUNDS {
            let before = pairs.len();
            pairs = tandem_round(&pairs, &mut rules, &mut idx, 3, cap);
            if pairs.len() == before && cap >= MAX_PERIOD {
                break;
            }
            cap = (cap * 2).min(MAX_PERIOD);
        }
        assert!(pairs.len() <= 2, "outer loop should collapse: {pairs:?}");
        assert!(rules.len() >= 2, "need nested rules: {rules:?}");
    }
}
