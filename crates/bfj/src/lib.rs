//! BFJ (BigFoot Java): the idealized concurrent object language from
//! *BigFoot: Static Check Placement for Dynamic Race Detection* (PLDI
//! 2017), §3.1 — with a parser, pretty-printer, and a deterministic
//! multi-threaded interpreter that streams race-detection events.
//!
//! This crate is the execution substrate of the BigFoot reproduction:
//! programs are parsed (and automatically lowered to A-normal form),
//! instrumented by the `bigfoot` crate's static analysis, and executed
//! here while a dynamic detector consumes the [`Event`] stream.
//!
//! # Quick example
//!
//! ```
//! use bigfoot_bfj::{parse_program, Interp, RecordingSink, SchedPolicy};
//!
//! let program = parse_program(
//!     "class Counter {
//!          field n;
//!          meth bump() { this.n = this.n + 1; return this.n; }
//!      }
//!      main {
//!          c = new Counter;
//!          v = c.bump();
//!      }",
//! )?;
//! let mut sink = RecordingSink::default();
//! Interp::new(&program, SchedPolicy::default()).run(&mut sink)?;
//! // Alloc of c, then bump() reads c.n, writes it, and reads it again
//! // for the return, then the main thread exits.
//! assert_eq!(sink.events.len(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod compile;
pub mod event;
pub mod fingerprint;
pub mod interp;
pub mod lexer;
pub mod mutate;
pub mod parser;
pub mod pretty;
mod sym;
pub mod trace;

pub use ast::{
    AccessKind, Binop, Block, CheckPath, ClassDef, Expr, MethodDef, Path, Program, Range, Stmt,
    StmtId, StmtKind, Unop,
};
pub use compile::{compile, CompiledProgram, CompiledVm};
pub use event::{
    ArrId, CheckTarget, ConcreteRange, Event, EventSink, Loc, NullSink, ObjId, RecordingSink,
};
pub use fingerprint::{
    fingerprint_block, fingerprint_body, fingerprint_method, FINGERPRINT_VERSION,
};
pub use interp::{
    eval, Env, Heap, Interp, ProgramIndex, RunOutcome, RuntimeError, SchedPolicy, SymHasher, Value,
};
pub use lexer::{tokenize, LexError, Token};
pub use mutate::{mutate, site_count, MutationKind};
pub use parser::{parse_expr, parse_program, ParseError};
pub use pretty::{pretty, pretty_check_path, pretty_expr, pretty_stmt};
pub use sym::Sym;
pub use trace::compress::{
    compress, decompress, decompress_to, is_compressed, read_compressed, CompressedTrace,
    CompressedTraceWriter, DeltaState, COMPRESSED_MAGIC, COMPRESSED_VERSION,
};
pub use trace::{TraceError, TraceWriter, TRACE_MAGIC, TRACE_VERSION};

/// Re-export of the thread-id type used throughout the event stream.
pub use bigfoot_vc::Tid;
