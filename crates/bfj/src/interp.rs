//! A deterministic, multi-threaded interpreter for BFJ.
//!
//! Threads are *green*: the interpreter holds every thread's control stack
//! explicitly and a seeded scheduler decides which thread executes the next
//! statement. Given the same program and [`SchedPolicy`], execution — and
//! hence the emitted event trace — is bit-for-bit reproducible, which the
//! race-detection experiments rely on.
//!
//! Every heap access, explicit `check(C)` statement, and synchronization
//! operation is reported to an [`EventSink`] in global execution order.

use crate::ast::*;
use crate::event::*;
use crate::Sym;
use bigfoot_vc::{AccessKind, Tid};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast identity-style hasher for interned symbols.
#[derive(Default, Clone)]
pub struct SymHasher(u64);

impl Hasher for SymHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3) ^ b as u64;
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0 = (n as u64 ^ 0xfeed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Environment mapping locals to values.
pub type Env = HashMap<Sym, Value, BuildHasherDefault<SymHasher>>;

/// A BFJ run-time value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// The null reference.
    Null,
    /// Reference to a heap object.
    Obj(ObjId),
    /// Reference to a heap array.
    Arr(ArrId),
    /// A thread handle (result of `fork`).
    Thread(Tid),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => write!(f, "{o}"),
            Value::Arr(a) => write!(f, "{a}"),
            Value::Thread(t) => write!(f, "{t}"),
        }
    }
}

/// A heap object instance.
#[derive(Debug, Clone)]
pub struct Object {
    /// Index of the class in `Program::classes`.
    pub class: usize,
    /// Field values, indexed by declaration order.
    pub fields: Vec<Value>,
}

/// A heap array instance.
#[derive(Debug, Clone)]
pub struct ArrayObj {
    /// The elements.
    pub data: Vec<Value>,
}

/// The shared heap: objects and arrays, allocation-only (no GC).
#[derive(Debug, Default)]
pub struct Heap {
    pub(crate) objects: Vec<Object>,
    pub(crate) arrays: Vec<ArrayObj>,
    pub(crate) cells: u64,
}

impl Heap {
    /// The object with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this heap.
    #[inline(always)]
    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.0 as usize]
    }

    /// The array with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this heap.
    #[inline(always)]
    pub fn array(&self, id: ArrId) -> &ArrayObj {
        &self.arrays[id.0 as usize]
    }

    /// Total heap cells allocated (object fields + array elements).
    ///
    /// This is the "base memory" denominator for Table 2's space-overhead
    /// accounting.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    pub(crate) fn alloc_object(&mut self, class: usize, nfields: usize) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            class,
            fields: vec![Value::Int(0); nfields],
        });
        self.cells += nfields as u64;
        id
    }

    pub(crate) fn alloc_array(&mut self, len: usize) -> ArrId {
        let id = ArrId(self.arrays.len() as u32);
        self.arrays.push(ArrayObj {
            data: vec![Value::Int(0); len],
        });
        self.cells += len as u64;
        id
    }
}

/// Scheduling policy for the green-thread scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Run each thread for `quantum` steps, then move to the next runnable
    /// thread in id order.
    RoundRobin {
        /// Steps per turn.
        quantum: u32,
    },
    /// After every step, switch to a pseudo-random runnable thread with
    /// probability `1/switch_inv` (seeded, deterministic). Good for
    /// exploring interleavings in race tests.
    Random {
        /// RNG seed.
        seed: u64,
        /// Inverse switch probability (1 = switch every step).
        switch_inv: u32,
    },
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::RoundRobin { quantum: 64 }
    }
}

/// An error raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A variable was read before assignment.
    UnboundVar(String),
    /// An operation was applied to a value of the wrong type.
    TypeError(String),
    /// Unknown class, field, or method.
    UnknownName(String),
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The array.
        array: ArrId,
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Integer division or modulus by zero.
    DivisionByZero,
    /// Negative array length.
    NegativeArrayLength(i64),
    /// Every live thread is blocked.
    Deadlock,
    /// The step budget was exhausted.
    StepLimitExceeded(u64),
    /// A thread released a lock it does not hold.
    IllegalRelease,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::UnknownName(m) => write!(f, "unknown name: {m}"),
            RuntimeError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for {array} of length {len}")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            RuntimeError::Deadlock => write!(f, "deadlock: all live threads are blocked"),
            RuntimeError::StepLimitExceeded(n) => write!(f, "step limit of {n} exceeded"),
            RuntimeError::IllegalRelease => write!(f, "released a lock that is not held"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Summary of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total interpreter steps executed.
    pub steps: u64,
    /// Number of threads that ran (including main).
    pub threads: usize,
    /// Heap cells allocated.
    pub heap_cells: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(ObjId),
    BlockedJoin(Tid),
    /// Parked in `wait(lock)` until a `notify` on the same monitor.
    WaitingNotify(ObjId),
    Done,
}

enum Work<'p> {
    Stmt(&'p Stmt),
    /// The mid-loop exit test of the referenced `Loop` statement.
    LoopJunction(&'p Stmt),
    /// Re-acquire `lock` with the saved reentrancy `count` after a
    /// `wait` was notified.
    Reacquire {
        lock: ObjId,
        count: u32,
    },
}

struct Frame<'p> {
    env: Env,
    work: Vec<Work<'p>>,
    /// Variable in the caller receiving the return value.
    ret_dst: Option<Sym>,
    /// The method's return expression (`None` for thread roots / main).
    ret_expr: Option<&'p Expr>,
}

struct ThreadState<'p> {
    frames: Vec<Frame<'p>>,
    status: Status,
}

#[derive(Debug, Default)]
struct LockState {
    owner: Option<Tid>,
    count: u32,
}

struct ClassInfo {
    field_idx: HashMap<Sym, u32, BuildHasherDefault<SymHasher>>,
    method_idx: HashMap<Sym, usize, BuildHasherDefault<SymHasher>>,
    volatile_fields: Vec<bool>,
}

/// Name-resolution tables for one program.
pub struct ProgramIndex {
    class_idx: HashMap<Sym, usize, BuildHasherDefault<SymHasher>>,
    classes: Vec<ClassInfo>,
}

impl ProgramIndex {
    /// Builds the index for `program`.
    pub fn build(program: &Program) -> ProgramIndex {
        let mut class_idx = HashMap::default();
        let mut classes = Vec::new();
        // Volatility is a property of the field *name*, program-wide: BFJ
        // is untyped, so the static analysis cannot distinguish `a.v` on
        // one class from another — the run time must agree with that
        // (conservative) resolution or the analysis would skip checks on
        // fields the interpreter still reports as plain accesses.
        let volatile_names: std::collections::HashSet<Sym> = program
            .classes
            .iter()
            .flat_map(|c| c.volatiles.iter().copied())
            .collect();
        for (ci, c) in program.classes.iter().enumerate() {
            class_idx.insert(c.name, ci);
            let mut field_idx = HashMap::default();
            for (fi, f) in c.fields.iter().enumerate() {
                field_idx.insert(*f, fi as u32);
            }
            let mut method_idx = HashMap::default();
            for (mi, m) in c.methods.iter().enumerate() {
                method_idx.insert(m.name, mi);
            }
            let volatile_fields = c
                .fields
                .iter()
                .map(|f| volatile_names.contains(f))
                .collect();
            classes.push(ClassInfo {
                field_idx,
                method_idx,
                volatile_fields,
            });
        }
        ProgramIndex { class_idx, classes }
    }

    /// Resolves a field name within class `class` to its index.
    pub fn field(&self, class: usize, name: Sym) -> Option<u32> {
        self.classes.get(class)?.field_idx.get(&name).copied()
    }

    /// Resolves a class name to its index.
    pub fn class(&self, name: Sym) -> Option<usize> {
        self.class_idx.get(&name).copied()
    }

    /// Resolves a method name within class `class`.
    pub fn method(&self, class: usize, name: Sym) -> Option<usize> {
        self.classes.get(class)?.method_idx.get(&name).copied()
    }

    /// True if field `fidx` of class `class` is declared volatile.
    pub fn is_volatile(&self, class: usize, fidx: u32) -> bool {
        self.classes
            .get(class)
            .and_then(|c| c.volatile_fields.get(fidx as usize))
            .copied()
            .unwrap_or(false)
    }
}

/// The interpreter for one program execution.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{parse_program, Interp, NullSink, SchedPolicy, Sym, Tid, Value};
///
/// let p = parse_program("main { x = 1 + 2; }")?;
/// let mut interp = Interp::new(&p, SchedPolicy::default());
/// interp.run(&mut NullSink)?;
/// assert_eq!(interp.final_env(Tid(0)).unwrap()[&Sym::intern("x")], Value::Int(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp<'p> {
    program: &'p Program,
    index: ProgramIndex,
    heap: Heap,
    threads: Vec<ThreadState<'p>>,
    final_envs: Vec<Option<Env>>,
    locks: HashMap<ObjId, LockState>,
    policy: SchedPolicy,
    rng: u64,
    steps: u64,
    max_steps: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter positioned at the start of `main`.
    pub fn new(program: &'p Program, policy: SchedPolicy) -> Self {
        let root = Frame {
            env: Env::default(),
            work: program.main.stmts.iter().rev().map(Work::Stmt).collect(),
            ret_dst: None,
            ret_expr: None,
        };
        let seed = match policy {
            SchedPolicy::Random { seed, .. } => seed | 1,
            _ => 0x9E3779B97F4A7C15,
        };
        Interp {
            program,
            index: ProgramIndex::build(program),
            heap: Heap::default(),
            threads: vec![ThreadState {
                frames: vec![root],
                status: Status::Runnable,
            }],
            final_envs: vec![None],
            locks: HashMap::new(),
            policy,
            rng: seed,
            steps: 0,
            max_steps: u64::MAX,
        }
    }

    /// Caps the number of interpreter steps; exceeding it is an error.
    pub fn with_max_steps(mut self, max: u64) -> Self {
        self.max_steps = max;
        self
    }

    /// The shared heap (for inspecting program results in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The name-resolution index.
    pub fn index(&self) -> &ProgramIndex {
        &self.index
    }

    /// The final environment of a completed thread's root frame.
    pub fn final_env(&self, t: Tid) -> Option<&Env> {
        self.final_envs.get(t.index())?.as_ref()
    }

    fn rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Unbiased draw from `0..n` (Lemire multiply-shift with rejection).
    /// A plain `rand() % n` over-selects the low residues whenever `n`
    /// does not divide 2^64, skewing `Random`-policy schedules.
    fn rand_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = self.rand() as u128 * n as u128;
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = self.rand() as u128 * n as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Runs the program to completion, streaming events into `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] raised by any thread, a
    /// [`RuntimeError::Deadlock`] if all live threads block, or
    /// [`RuntimeError::StepLimitExceeded`].
    pub fn run<S: EventSink>(&mut self, sink: &mut S) -> Result<RunOutcome, RuntimeError> {
        // Top-level span on the interpreter's flight-recorder timeline;
        // scheduling decisions appear as instant ticks inside it.
        let _trace = bigfoot_obs::trace_span!("interp.run");
        let mut current = 0usize;
        let mut quantum_left = self.quantum();
        // Scheduling counters stay plain locals on the hot loop and are
        // published to the obs registry once, after the run.
        let mut context_switches = 0u64;
        let run_result = loop {
            // Refresh blocked threads whose conditions now hold.
            self.wake_blocked();
            if self.threads.iter().all(|t| t.status == Status::Done) {
                break Ok(());
            }
            if self.threads[current].status != Status::Runnable || quantum_left == 0 {
                let next = match self.pick_next(current) {
                    Ok(n) => n,
                    Err(e) => break Err(e),
                };
                if next != current {
                    context_switches += 1;
                    bigfoot_obs::trace_instant!("interp.switch");
                }
                current = next;
                quantum_left = self.quantum();
            }
            if let Err(e) = self.step(Tid(current as u32), sink) {
                break Err(e);
            }
            self.steps += 1;
            if self.steps > self.max_steps {
                break Err(RuntimeError::StepLimitExceeded(self.max_steps));
            }
            quantum_left -= 1;
            if let SchedPolicy::Random { switch_inv, .. } = self.policy {
                if switch_inv <= 1 || self.rand_below(switch_inv as u64) == 0 {
                    quantum_left = 0;
                }
            }
        };
        bigfoot_obs::count!("interp.runs");
        bigfoot_obs::count!("interp.steps", self.steps);
        bigfoot_obs::count!("interp.context_switches", context_switches);
        bigfoot_obs::count!("interp.threads", self.threads.len());
        run_result?;
        Ok(RunOutcome {
            steps: self.steps,
            threads: self.threads.len(),
            heap_cells: self.heap.cells,
        })
    }

    fn quantum(&self) -> u64 {
        match self.policy {
            SchedPolicy::RoundRobin { quantum } => quantum.max(1) as u64,
            SchedPolicy::Random { .. } => u64::MAX,
        }
    }

    fn wake_blocked(&mut self) {
        for i in 0..self.threads.len() {
            match self.threads[i].status {
                Status::BlockedLock(l) => {
                    let free = self
                        .locks
                        .get(&l)
                        .is_none_or(|s| s.owner.is_none() || s.owner == Some(Tid(i as u32)));
                    if free {
                        self.threads[i].status = Status::Runnable;
                    }
                }
                Status::BlockedJoin(t) if self.threads[t.index()].status == Status::Done => {
                    self.threads[i].status = Status::Runnable;
                }
                // WaitingNotify is only released by an explicit notify.
                _ => {}
            }
        }
    }

    fn pick_next(&mut self, current: usize) -> Result<usize, RuntimeError> {
        let n = self.threads.len();
        let runnable: Vec<usize> = (0..n)
            .filter(|&i| self.threads[i].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            return Err(RuntimeError::Deadlock);
        }
        Ok(match self.policy {
            SchedPolicy::RoundRobin { .. } => *runnable
                .iter()
                .find(|&&i| i > current)
                .unwrap_or(&runnable[0]),
            SchedPolicy::Random { .. } => runnable[self.rand_below(runnable.len() as u64) as usize],
        })
    }

    /// Executes one work item of thread `t`.
    fn step<S: EventSink>(&mut self, t: Tid, sink: &mut S) -> Result<(), RuntimeError> {
        let ti = t.index();
        let frames = &mut self.threads[ti].frames;
        let Some(frame) = frames.last_mut() else {
            self.threads[ti].status = Status::Done;
            return Ok(());
        };
        let Some(work) = frame.work.pop() else {
            // Frame finished: return to caller.
            return self.pop_frame(t, sink);
        };
        match work {
            Work::Reacquire { lock, count } => {
                let state = self.locks.entry(lock).or_default();
                match state.owner {
                    None => {
                        state.owner = Some(t);
                        state.count = count;
                        sink.event(&Event::Acquire { t, lock });
                        Ok(())
                    }
                    Some(owner) if owner == t => unreachable!("waiter cannot hold the lock"),
                    Some(_) => {
                        let frame = self.threads[ti].frames.last_mut().expect("frame");
                        frame.work.push(Work::Reacquire { lock, count });
                        self.threads[ti].status = Status::BlockedLock(lock);
                        Ok(())
                    }
                }
            }
            Work::LoopJunction(loop_stmt) => {
                let StmtKind::Loop { head, exit, tail } = &loop_stmt.kind else {
                    unreachable!("LoopJunction must reference a Loop");
                };
                let frame = self.threads[ti].frames.last_mut().expect("frame");
                let done = as_bool(eval(&frame.env, &self.heap, exit)?)?;
                if !done {
                    frame.work.push(Work::LoopJunction(loop_stmt));
                    for s in head.stmts.iter().rev() {
                        frame.work.push(Work::Stmt(s));
                    }
                    for s in tail.stmts.iter().rev() {
                        frame.work.push(Work::Stmt(s));
                    }
                }
                Ok(())
            }
            Work::Stmt(s) => self.exec_stmt(t, s, sink),
        }
    }

    fn pop_frame<S: EventSink>(&mut self, t: Tid, sink: &mut S) -> Result<(), RuntimeError> {
        let ti = t.index();
        let frame = self.threads[ti].frames.pop().expect("frame");
        let ret_val = match frame.ret_expr {
            Some(e) => eval(&frame.env, &self.heap, e)?,
            None => Value::Int(0),
        };
        if let Some(caller) = self.threads[ti].frames.last_mut() {
            if let Some(dst) = frame.ret_dst {
                caller.env.insert(dst, ret_val);
            }
            Ok(())
        } else {
            // Thread root completed.
            self.final_envs[ti] = Some(frame.env);
            self.threads[ti].status = Status::Done;
            sink.event(&Event::ThreadExit { t });
            Ok(())
        }
    }

    fn env(&mut self, t: Tid) -> &mut Env {
        &mut self.threads[t.index()]
            .frames
            .last_mut()
            .expect("frame")
            .env
    }

    fn lookup(&self, t: Tid, x: Sym) -> Result<Value, RuntimeError> {
        self.threads[t.index()]
            .frames
            .last()
            .expect("frame")
            .env
            .get(&x)
            .copied()
            .ok_or_else(|| RuntimeError::UnboundVar(x.as_str().to_owned()))
    }

    fn lookup_obj(&self, t: Tid, x: Sym) -> Result<ObjId, RuntimeError> {
        match self.lookup(t, x)? {
            Value::Obj(o) => Ok(o),
            other => Err(RuntimeError::TypeError(format!(
                "`{x}` is {other}, expected an object"
            ))),
        }
    }

    fn lookup_arr(&self, t: Tid, x: Sym) -> Result<ArrId, RuntimeError> {
        match self.lookup(t, x)? {
            Value::Arr(a) => Ok(a),
            other => Err(RuntimeError::TypeError(format!(
                "`{x}` is {other}, expected an array"
            ))),
        }
    }

    fn field_index(&self, obj: ObjId, field: Sym) -> Result<u32, RuntimeError> {
        let class = self.heap.object(obj).class;
        self.index.field(class, field).ok_or_else(|| {
            RuntimeError::UnknownName(format!(
                "field `{field}` in class `{}`",
                self.program.classes[class].name
            ))
        })
    }

    fn exec_stmt<S: EventSink>(
        &mut self,
        t: Tid,
        s: &'p Stmt,
        sink: &mut S,
    ) -> Result<(), RuntimeError> {
        let ti = t.index();
        match &s.kind {
            StmtKind::Skip => Ok(()),
            StmtKind::Assign { x, e } => {
                let env = &mut self.threads[ti].frames.last_mut().expect("frame").env;
                let v = eval(env, &self.heap, e)?;
                env.insert(*x, v);
                Ok(())
            }
            StmtKind::Rename { fresh, old } => {
                // Instrumentation may place a rename before a variable's
                // first assignment (e.g. a loop-local temporary on the
                // first iteration); the copy is only consulted when prior
                // history facts about `old` exist, so default to 0.
                let v = self.lookup(t, *old).unwrap_or(Value::Int(0));
                self.env(t).insert(*fresh, v);
                Ok(())
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let env = &self.threads[ti].frames.last().expect("frame").env;
                let b = as_bool(eval(env, &self.heap, cond)?)?;
                let block = if b { then_b } else { else_b };
                let frame = self.threads[ti].frames.last_mut().expect("frame");
                for st in block.stmts.iter().rev() {
                    frame.work.push(Work::Stmt(st));
                }
                Ok(())
            }
            StmtKind::Loop { head, .. } => {
                let frame = self.threads[ti].frames.last_mut().expect("frame");
                frame.work.push(Work::LoopJunction(s));
                for st in head.stmts.iter().rev() {
                    frame.work.push(Work::Stmt(st));
                }
                Ok(())
            }
            StmtKind::Acquire { lock } => {
                let obj = self.lookup_obj(t, *lock)?;
                let state = self.locks.entry(obj).or_default();
                match state.owner {
                    None => {
                        state.owner = Some(t);
                        state.count = 1;
                        sink.event(&Event::Acquire { t, lock: obj });
                        Ok(())
                    }
                    Some(owner) if owner == t => {
                        state.count += 1;
                        sink.event(&Event::Acquire { t, lock: obj });
                        Ok(())
                    }
                    Some(_) => {
                        // Re-issue the acquire and block.
                        let frame = self.threads[ti].frames.last_mut().expect("frame");
                        frame.work.push(Work::Stmt(s));
                        self.threads[ti].status = Status::BlockedLock(obj);
                        Ok(())
                    }
                }
            }
            StmtKind::Release { lock } => {
                let obj = self.lookup_obj(t, *lock)?;
                let state = self.locks.entry(obj).or_default();
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                state.count -= 1;
                if state.count == 0 {
                    state.owner = None;
                }
                sink.event(&Event::Release { t, lock: obj });
                Ok(())
            }
            StmtKind::New { x, class } => {
                let ci = self
                    .index
                    .class(*class)
                    .ok_or_else(|| RuntimeError::UnknownName(format!("class `{class}`")))?;
                let nfields = self.program.classes[ci].fields.len();
                let obj = self.heap.alloc_object(ci, nfields);
                self.env(t).insert(*x, Value::Obj(obj));
                sink.event(&Event::AllocObj {
                    t,
                    obj,
                    class: ci as u32,
                    fields: nfields as u32,
                });
                Ok(())
            }
            StmtKind::NewArray { x, len } => {
                let env = &self.threads[ti].frames.last().expect("frame").env;
                let n = as_int(eval(env, &self.heap, len)?)?;
                if n < 0 {
                    return Err(RuntimeError::NegativeArrayLength(n));
                }
                let arr = self.heap.alloc_array(n as usize);
                self.env(t).insert(*x, Value::Arr(arr));
                sink.event(&Event::AllocArr {
                    t,
                    arr,
                    len: n as u64,
                });
                Ok(())
            }
            StmtKind::ReadField { x, obj, field } => {
                let o = self.lookup_obj(t, *obj)?;
                let fi = self.field_index(o, *field)?;
                let v = self.heap.object(o).fields[fi as usize];
                self.env(t).insert(*x, v);
                if self.index.is_volatile(self.heap.object(o).class, fi) {
                    sink.event(&Event::VolatileRead {
                        t,
                        obj: o,
                        field: fi,
                    });
                } else {
                    sink.event(&Event::Access {
                        t,
                        kind: AccessKind::Read,
                        loc: Loc::Field(o, fi),
                    });
                }
                Ok(())
            }
            StmtKind::WriteField { obj, field, src } => {
                let o = self.lookup_obj(t, *obj)?;
                let fi = self.field_index(o, *field)?;
                let v = self.lookup(t, *src)?;
                self.heap.objects[o.0 as usize].fields[fi as usize] = v;
                if self.index.is_volatile(self.heap.object(o).class, fi) {
                    sink.event(&Event::VolatileWrite {
                        t,
                        obj: o,
                        field: fi,
                    });
                } else {
                    sink.event(&Event::Access {
                        t,
                        kind: AccessKind::Write,
                        loc: Loc::Field(o, fi),
                    });
                }
                Ok(())
            }
            StmtKind::ReadArr { x, arr, idx } => {
                let a = self.lookup_arr(t, *arr)?;
                let env = &self.threads[ti].frames.last().expect("frame").env;
                let i = as_int(eval(env, &self.heap, idx)?)?;
                let len = self.heap.array(a).data.len();
                if i < 0 || i as usize >= len {
                    return Err(RuntimeError::IndexOutOfBounds {
                        array: a,
                        index: i,
                        len,
                    });
                }
                let v = self.heap.array(a).data[i as usize];
                self.env(t).insert(*x, v);
                sink.event(&Event::Access {
                    t,
                    kind: AccessKind::Read,
                    loc: Loc::Elem(a, i),
                });
                Ok(())
            }
            StmtKind::WriteArr { arr, idx, src } => {
                let a = self.lookup_arr(t, *arr)?;
                let env = &self.threads[ti].frames.last().expect("frame").env;
                let i = as_int(eval(env, &self.heap, idx)?)?;
                let v = self.lookup(t, *src)?;
                let len = self.heap.array(a).data.len();
                if i < 0 || i as usize >= len {
                    return Err(RuntimeError::IndexOutOfBounds {
                        array: a,
                        index: i,
                        len,
                    });
                }
                self.heap.arrays[a.0 as usize].data[i as usize] = v;
                sink.event(&Event::Access {
                    t,
                    kind: AccessKind::Write,
                    loc: Loc::Elem(a, i),
                });
                Ok(())
            }
            StmtKind::Call {
                x,
                recv,
                meth,
                args,
            } => {
                let frame = self.call_frame(t, *recv, *meth, args, Some(*x))?;
                self.threads[ti].frames.push(frame);
                Ok(())
            }
            StmtKind::Fork {
                x,
                recv,
                meth,
                args,
            } => {
                let frame = self.call_frame(t, *recv, *meth, args, None)?;
                let child = Tid(self.threads.len() as u32);
                self.threads.push(ThreadState {
                    frames: vec![frame],
                    status: Status::Runnable,
                });
                self.final_envs.push(None);
                self.env(t).insert(*x, Value::Thread(child));
                sink.event(&Event::Fork { parent: t, child });
                Ok(())
            }
            StmtKind::Join { t: tvar } => {
                let target = match self.lookup(t, *tvar)? {
                    Value::Thread(x) => x,
                    other => {
                        return Err(RuntimeError::TypeError(format!(
                            "`{tvar}` is {other}, expected a thread handle"
                        )))
                    }
                };
                if self.threads[target.index()].status == Status::Done {
                    sink.event(&Event::Join {
                        parent: t,
                        child: target,
                    });
                    Ok(())
                } else {
                    let frame = self.threads[ti].frames.last_mut().expect("frame");
                    frame.work.push(Work::Stmt(s));
                    self.threads[ti].status = Status::BlockedJoin(target);
                    Ok(())
                }
            }
            StmtKind::Wait { lock } => {
                let obj = self.lookup_obj(t, *lock)?;
                let state = self.locks.entry(obj).or_default();
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                // Fully release the monitor, park, and schedule the
                // re-acquire (with the saved reentrancy count) for after
                // the notify.
                let count = state.count;
                state.owner = None;
                state.count = 0;
                sink.event(&Event::Release { t, lock: obj });
                let frame = self.threads[ti].frames.last_mut().expect("frame");
                frame.work.push(Work::Reacquire { lock: obj, count });
                self.threads[ti].status = Status::WaitingNotify(obj);
                Ok(())
            }
            StmtKind::Notify { lock } => {
                let obj = self.lookup_obj(t, *lock)?;
                let state = self.locks.entry(obj).or_default();
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                // Wake every waiter (Java notifyAll); they contend for the
                // monitor once it is released.
                for th in &mut self.threads {
                    if th.status == Status::WaitingNotify(obj) {
                        th.status = Status::BlockedLock(obj);
                    }
                }
                Ok(())
            }
            StmtKind::Check { paths } => {
                let mut resolved = Vec::with_capacity(paths.len());
                for cp in paths {
                    resolved.push((cp.kind, self.resolve_path(t, &cp.path)?));
                }
                sink.event(&Event::Check { t, paths: resolved });
                Ok(())
            }
        }
    }

    fn resolve_path(&self, t: Tid, path: &Path) -> Result<CheckTarget, RuntimeError> {
        match path {
            Path::Fields { base, fields } => {
                let o = self.lookup_obj(t, *base)?;
                let mut idxs = Vec::with_capacity(fields.len());
                for f in fields {
                    idxs.push(self.field_index(o, *f)?);
                }
                Ok(CheckTarget::Fields(o, idxs))
            }
            Path::Arr { base, range } => {
                let a = self.lookup_arr(t, *base)?;
                let env = &self.threads[t.index()].frames.last().expect("frame").env;
                let lo = as_int(eval(env, &self.heap, &range.lo)?)?;
                let hi = as_int(eval(env, &self.heap, &range.hi)?)?;
                Ok(CheckTarget::Range(
                    a,
                    ConcreteRange {
                        lo,
                        hi,
                        step: range.step,
                    },
                ))
            }
        }
    }

    fn call_frame(
        &mut self,
        t: Tid,
        recv: Sym,
        meth: Sym,
        args: &[Sym],
        ret_dst: Option<Sym>,
    ) -> Result<Frame<'p>, RuntimeError> {
        let o = self.lookup_obj(t, recv)?;
        let class = self.heap.object(o).class;
        let mi = self.index.method(class, meth).ok_or_else(|| {
            RuntimeError::UnknownName(format!(
                "method `{meth}` in class `{}`",
                self.program.classes[class].name
            ))
        })?;
        let mdef = &self.program.classes[class].methods[mi];
        if mdef.params.len() != args.len() {
            return Err(RuntimeError::TypeError(format!(
                "method `{meth}` expects {} arguments, got {}",
                mdef.params.len(),
                args.len()
            )));
        }
        let mut env = Env::default();
        env.insert(Sym::intern("this"), Value::Obj(o));
        for (p, a) in mdef.params.iter().zip(args) {
            let v = self.lookup(t, *a)?;
            env.insert(*p, v);
        }
        Ok(Frame {
            env,
            work: mdef.body.stmts.iter().rev().map(Work::Stmt).collect(),
            ret_dst,
            ret_expr: Some(&mdef.ret),
        })
    }
}

// The error constructors are outlined and `#[cold]` so the `format!`
// machinery stays off the interpreter's (and compiled VM's) hot path.
#[cold]
#[inline(never)]
fn int_type_error(other: Value) -> RuntimeError {
    RuntimeError::TypeError(format!("expected an integer, found {other}"))
}

#[cold]
#[inline(never)]
fn bool_type_error(other: Value) -> RuntimeError {
    RuntimeError::TypeError(format!("expected a boolean, found {other}"))
}

#[inline(always)]
pub(crate) fn as_int(v: Value) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(n) => Ok(n),
        other => Err(int_type_error(other)),
    }
}

#[inline(always)]
pub(crate) fn as_bool(v: Value) -> Result<bool, RuntimeError> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(bool_type_error(other)),
    }
}

/// Evaluates a pure expression in `env`, resolving `a.length` against
/// `heap`.
///
/// # Errors
///
/// Returns [`RuntimeError`] on unbound variables, type mismatches, or
/// division by zero.
pub fn eval(env: &Env, heap: &Heap, e: &Expr) -> Result<Value, RuntimeError> {
    Ok(match e {
        Expr::Int(n) => Value::Int(*n),
        Expr::Bool(b) => Value::Bool(*b),
        Expr::Null => Value::Null,
        Expr::Var(x) => *env
            .get(x)
            .ok_or_else(|| RuntimeError::UnboundVar(x.as_str().to_owned()))?,
        Expr::Len(a) => {
            let v = *env
                .get(a)
                .ok_or_else(|| RuntimeError::UnboundVar(a.as_str().to_owned()))?;
            match v {
                Value::Arr(id) => Value::Int(heap.array(id).data.len() as i64),
                other => {
                    return Err(RuntimeError::TypeError(format!(
                        "`{a}` is {other}, expected an array"
                    )))
                }
            }
        }
        Expr::Unop(op, a) => {
            let v = eval(env, heap, a)?;
            match op {
                // Wrapping, like every arithmetic `Binop`: `-i64::MIN`
                // must not abort under debug overflow checks.
                Unop::Neg => Value::Int(as_int(v)?.wrapping_neg()),
                Unop::Not => Value::Bool(!as_bool(v)?),
            }
        }
        Expr::Binop(op, a, b) => {
            let va = eval(env, heap, a)?;
            let vb = eval(env, heap, b)?;
            match op {
                Binop::Add => Value::Int(as_int(va)?.wrapping_add(as_int(vb)?)),
                Binop::Sub => Value::Int(as_int(va)?.wrapping_sub(as_int(vb)?)),
                Binop::Mul => Value::Int(as_int(va)?.wrapping_mul(as_int(vb)?)),
                Binop::Div => {
                    let d = as_int(vb)?;
                    if d == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    Value::Int(as_int(va)?.wrapping_div(d))
                }
                Binop::Mod => {
                    let d = as_int(vb)?;
                    if d == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    Value::Int(as_int(va)?.wrapping_rem(d))
                }
                Binop::Eq => Value::Bool(va == vb),
                Binop::Ne => Value::Bool(va != vb),
                Binop::Lt => Value::Bool(as_int(va)? < as_int(vb)?),
                Binop::Le => Value::Bool(as_int(va)? <= as_int(vb)?),
                Binop::Gt => Value::Bool(as_int(va)? > as_int(vb)?),
                Binop::Ge => Value::Bool(as_int(va)? >= as_int(vb)?),
                Binop::And => Value::Bool(as_bool(va)? && as_bool(vb)?),
                Binop::Or => Value::Bool(as_bool(va)? || as_bool(vb)?),
            }
        }
    })
}
