//! The BFJ compilation tier: AST → flat register bytecode → [`CompiledVm`].
//!
//! The tree-walking [`Interp`](crate::Interp) pays for a `HashMap`
//! environment lookup per variable mention, a `Vec<Work>` push/pop per
//! statement, and `Box<Expr>` pointer-chasing per operator. Once the
//! detectors got fast (dense slab shadow stores, pipelined rings), that
//! interpretive overhead became the dominant cost of every experiment —
//! and the BigFoot overhead ratios are only honest when the *baseline*
//! execution is fast, which is also how the paper's StaticBF placements
//! were meant to be consumed: inlined into compiled code.
//!
//! [`compile`] lowers a (possibly instrumented) program once:
//!
//! * every local resolves to a dense **frame slot** (no hashing at run
//!   time; an init bitmask preserves unbound-variable errors),
//! * every statement becomes exactly **one instruction** carrying its
//!   explicit successor pc(s), so block joins cost zero steps and the
//!   instruction count per schedule equals the interpreter's step count,
//! * field, method, and `new` sites are **pre-bound per class** (the
//!   run-time class indexes a flat table instead of a name lookup),
//! * `check(C)` statements — the StaticBF placements chosen by
//!   `bigfoot-core` — compile to direct [`EventSink`](crate::EventSink)
//!   calls with their field indices pre-resolved per class, and
//! * expressions flatten to postfix register ops over a shared scratch
//!   file, preserving the recursive evaluator's exact evaluation and
//!   type-check order.
//!
//! [`CompiledVm`] then re-implements the interpreter's green-thread
//! scheduler — same quantum accounting, same xorshift64* / Lemire
//! `rand_below` draw sequence, same `wake_blocked` scan order, same
//! deadlock and step-limit behavior — over that bytecode. The contract,
//! enforced by a fuzz oracle and a differential suite, is **byte
//! identity**: for any program and [`SchedPolicy`](crate::SchedPolicy),
//! the BFTR-encoded event stream of the compiled run equals the
//! interpreted run's, bit for bit.

mod lower;
mod vm;

pub use lower::{compile, CompiledProgram};
pub use vm::CompiledVm;
