//! The register-bytecode virtual machine.
//!
//! [`CompiledVm`] mirrors [`Interp`](crate::Interp)'s public surface and
//! — deliberately, line for line — its green-thread scheduler: the same
//! quantum accounting, the same xorshift64* generator and Lemire
//! `rand_below` rejection loop drawn in the same sequence, the same
//! `wake_blocked` scan order and deadlock/step-limit behavior. One
//! bytecode instruction is one scheduler step, so a compiled execution
//! is the *same* execution as the interpreted one; only the cost per
//! step changes (slot indexing instead of `HashMap` hashing, pre-bound
//! field/method tables instead of name lookups, flat register ops
//! instead of `Box<Expr>` recursion).

use super::lower::{
    CExpr, CPath, CallTarget, CompiledMethod, CompiledProgram, EOp, ExprId, Instr, Operand, SlotId,
};
use crate::ast::{Binop, Unop};
use crate::event::{CheckTarget, ConcreteRange, Event, EventSink, Loc, ObjId};
use crate::interp::{as_bool, as_int, Env, Heap, RunOutcome, RuntimeError, SchedPolicy, Value};
use crate::sym::Sym;
use bigfoot_vc::{AccessKind, Tid};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(ObjId),
    BlockedJoin(Tid),
    WaitingNotify(ObjId),
    Done,
}

/// One activation record: resolved slots instead of a `HashMap` env, a
/// pc instead of a work stack.
struct VmFrame {
    method: u32,
    pc: u32,
    /// Slot in the *caller* receiving the return value.
    ret_dst: Option<SlotId>,
    /// Pending monitor re-acquire after a notified `wait` — the
    /// bytecode analogue of the interpreter's `Work::Reacquire` item.
    reacquire: Option<(ObjId, u32)>,
    slots: Box<[Value]>,
    /// Init bitmask: a read of an unset slot is an unbound variable,
    /// exactly like a missing env entry.
    init: Box<[u64]>,
}

impl VmFrame {
    fn fresh(method: u32, m: &CompiledMethod, ret_dst: Option<SlotId>) -> VmFrame {
        let n = m.n_slots as usize;
        VmFrame {
            method,
            pc: m.entry,
            ret_dst,
            reacquire: None,
            slots: vec![Value::Int(0); n].into_boxed_slice(),
            init: vec![0u64; n.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Recycles a pooled frame for a call — or allocates a fresh one if
    /// the pool is empty or its top has the wrong slot count. Clearing
    /// the init bitmask alone resets a frame, because every slot read
    /// is gated on `init`; stale `slots` contents are unreachable.
    fn reuse(
        pool: &mut Vec<VmFrame>,
        method: u32,
        m: &CompiledMethod,
        ret_dst: Option<SlotId>,
    ) -> VmFrame {
        let n = m.n_slots as usize;
        if let Some(mut f) = pool.pop() {
            if f.slots.len() == n {
                f.method = method;
                f.pc = m.entry;
                f.ret_dst = ret_dst;
                f.reacquire = None;
                f.init.fill(0);
                return f;
            }
        }
        VmFrame::fresh(method, m, ret_dst)
    }

    #[inline(always)]
    fn is_init(&self, s: SlotId) -> bool {
        self.init[(s >> 6) as usize] >> (s & 63) & 1 != 0
    }

    #[inline(always)]
    fn set(&mut self, s: SlotId, v: Value) {
        self.slots[s as usize] = v;
        self.init[(s >> 6) as usize] |= 1 << (s & 63);
    }

    #[inline]
    fn name(&self, prog: &CompiledProgram, s: SlotId) -> Sym {
        prog.methods[self.method as usize].slot_names[s as usize]
    }

    #[inline(always)]
    fn get(&self, prog: &CompiledProgram, s: SlotId) -> Result<Value, RuntimeError> {
        if self.is_init(s) {
            Ok(self.slots[s as usize])
        } else {
            Err(unbound_var(prog, self, s))
        }
    }

    #[inline(always)]
    fn get_obj(&self, prog: &CompiledProgram, s: SlotId) -> Result<ObjId, RuntimeError> {
        match self.get(prog, s)? {
            Value::Obj(o) => Ok(o),
            other => Err(slot_type_error(prog, self, s, other, "an object")),
        }
    }

    #[inline(always)]
    fn get_arr(
        &self,
        prog: &CompiledProgram,
        s: SlotId,
    ) -> Result<crate::event::ArrId, RuntimeError> {
        match self.get(prog, s)? {
            Value::Arr(a) => Ok(a),
            other => Err(slot_type_error(prog, self, s, other, "an array")),
        }
    }
}

/// Cold, outlined error constructors: slot reads sit on every hot
/// instruction path, and keeping `format!` out of line keeps the
/// register pressure of the dispatch loop down. Messages are exactly
/// the interpreter's.
#[cold]
#[inline(never)]
fn unbound_var(prog: &CompiledProgram, frame: &VmFrame, s: SlotId) -> RuntimeError {
    RuntimeError::UnboundVar(frame.name(prog, s).as_str().to_owned())
}

#[cold]
#[inline(never)]
fn slot_type_error(
    prog: &CompiledProgram,
    frame: &VmFrame,
    s: SlotId,
    found: Value,
    wanted: &str,
) -> RuntimeError {
    RuntimeError::TypeError(format!(
        "`{}` is {found}, expected {wanted}",
        frame.name(prog, s)
    ))
}

struct VmThread {
    frames: Vec<VmFrame>,
    status: Status,
}

#[derive(Debug, Default, Clone)]
struct VmLock {
    owner: Option<Tid>,
    count: u32,
}

/// Dense lock table keyed by `ObjId` (object ids are allocation-ordered
/// and dense, so a `Vec` replaces the interpreter's `HashMap`).
#[inline]
fn lock_mut(locks: &mut Vec<VmLock>, obj: ObjId) -> &mut VmLock {
    let i = obj.0 as usize;
    if i >= locks.len() {
        locks.resize(i + 1, VmLock::default());
    }
    &mut locks[i]
}

/// How a [`CompiledVm::run_slice`] inner dispatch loop ended: the arms
/// that mutate the frame stack hand the mutation out here so it runs
/// once the top-frame borrow is dead.
enum SliceExit {
    /// `call`: push this callee and continue the slice in it.
    Call(VmFrame),
    /// `ret`: pop the top frame; it returned this value.
    Ret(Value),
    /// An instruction the scheduler must run via [`CompiledVm::step`].
    Cold,
}

/// Executes a [`CompiledProgram`], streaming events into an
/// [`EventSink`] — byte-identical to interpreting the source program.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::{compile, parse_program, CompiledVm, NullSink, SchedPolicy};
///
/// let p = parse_program("main { x = 1 + 2; }")?;
/// let compiled = compile(&p);
/// let outcome = CompiledVm::new(&compiled, SchedPolicy::default()).run(&mut NullSink)?;
/// assert_eq!(outcome.steps, 2); // assign + frame return, same as Interp
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompiledVm<'p> {
    prog: &'p CompiledProgram,
    heap: Heap,
    threads: Vec<VmThread>,
    final_envs: Vec<Option<Env>>,
    locks: Vec<VmLock>,
    policy: SchedPolicy,
    rng: u64,
    steps: u64,
    max_steps: u64,
    /// Shared scratch register file for `CExpr::Ops` (green threads:
    /// only one thread evaluates at a time).
    regs: Vec<Value>,
    /// Threads not yet `Done`. The run loop terminates on `live == 0`,
    /// which is exactly the interpreter's all-`Done` scan without paying
    /// O(threads) per step.
    live: usize,
    /// Threads in `BlockedLock` — they wake on *lock-state* changes, so
    /// while any exist, lock instructions must run one per scheduler
    /// step (the per-step `wake_blocked` timing is observable) and the
    /// slice executor refuses them.
    blocked_lock: usize,
    /// Threads in `BlockedJoin` — they wake only on `Done` transitions,
    /// which always end a slice, so they don't restrict the slice.
    /// `wake_blocked` can act exactly on these two statuses: when both
    /// counters are zero the scan is a no-op and the run loop skips it;
    /// the scan *order* is unchanged whenever it does run, keeping
    /// scheduling byte-identical.
    blocked_join: usize,
    /// Recycled frames: `call` pops one here instead of allocating its
    /// slot arrays, and `ret` pushes the popped frame back, keeping
    /// steady-state method calls allocation-free.
    pool: Vec<VmFrame>,
}

impl<'p> CompiledVm<'p> {
    /// Creates a VM positioned at the start of `main`.
    pub fn new(prog: &'p CompiledProgram, policy: SchedPolicy) -> Self {
        let root = VmFrame::fresh(0, &prog.methods[0], None);
        let seed = match policy {
            SchedPolicy::Random { seed, .. } => seed | 1,
            _ => 0x9E3779B97F4A7C15,
        };
        CompiledVm {
            prog,
            heap: Heap::default(),
            threads: vec![VmThread {
                frames: vec![root],
                status: Status::Runnable,
            }],
            final_envs: vec![None],
            locks: Vec::new(),
            policy,
            rng: seed,
            steps: 0,
            max_steps: u64::MAX,
            regs: vec![Value::Int(0); prog.max_regs as usize],
            live: 1,
            blocked_lock: 0,
            blocked_join: 0,
            pool: Vec::new(),
        }
    }

    /// Caps the number of VM steps; exceeding it is an error.
    pub fn with_max_steps(mut self, max: u64) -> Self {
        self.max_steps = max;
        self
    }

    /// The shared heap (for inspecting program results in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The final environment of a completed thread's root frame,
    /// reconstructed from its slots (same contents as
    /// [`Interp::final_env`](crate::Interp::final_env)).
    pub fn final_env(&self, t: Tid) -> Option<&Env> {
        self.final_envs.get(t.index())?.as_ref()
    }

    fn rand(&mut self) -> u64 {
        // xorshift64* — must match the interpreter bit for bit.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn rand_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = self.rand() as u128 * n as u128;
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = self.rand() as u128 * n as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Runs the program to completion, streaming events into `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] raised by any thread, a
    /// [`RuntimeError::Deadlock`] if all live threads block, or
    /// [`RuntimeError::StepLimitExceeded`] — at the same step, with the
    /// same event prefix, as the interpreter would.
    pub fn run<S: EventSink>(&mut self, sink: &mut S) -> Result<RunOutcome, RuntimeError> {
        let _trace = bigfoot_obs::trace_span!("vm.run");
        let mut current = 0usize;
        let mut quantum_left = self.quantum();
        let mut context_switches = 0u64;
        let round_robin = matches!(self.policy, SchedPolicy::RoundRobin { .. });
        let run_result = loop {
            // `wake_blocked` only acts on `BlockedLock`/`BlockedJoin`
            // threads and the all-`Done` scan is `live == 0`, so both
            // per-step scans reduce to counter tests on the hot path.
            if self.blocked_lock + self.blocked_join > 0 {
                self.wake_blocked();
            }
            if self.live == 0 {
                break Ok(());
            }
            if self.threads[current].status != Status::Runnable || quantum_left == 0 {
                let next = match self.pick_next(current) {
                    Ok(n) => n,
                    Err(e) => break Err(e),
                };
                if next != current {
                    context_switches += 1;
                    bigfoot_obs::trace_instant!("vm.switch");
                }
                current = next;
                quantum_left = self.quantum();
            }
            // Burn the quantum in one slice of single-thread
            // instructions (round-robin draws no randomness per step,
            // so skipping the per-step scheduler bookkeeping is
            // invisible). A step that needs the full machine — or a
            // slice error — falls through to the general
            // one-instruction path below.
            if round_robin {
                let lock_ok = self.blocked_lock == 0;
                let limit_budget = self.max_steps.saturating_sub(self.steps).saturating_add(1);
                let (executed, slice) = self.run_slice(
                    Tid(current as u32),
                    quantum_left.min(limit_budget),
                    lock_ok,
                    sink,
                );
                self.steps += executed;
                quantum_left -= executed;
                if let Err(e) = slice {
                    break Err(e);
                }
                if self.steps > self.max_steps {
                    break Err(RuntimeError::StepLimitExceeded(self.max_steps));
                }
                // A root `ret` inside the slice retires the thread: go
                // wake its joiners and pick the next one instead of
                // handing a `Done` thread to `step`.
                if quantum_left == 0 || self.threads[current].status != Status::Runnable {
                    continue;
                }
            }
            if let Err(e) = self.step(Tid(current as u32), sink) {
                break Err(e);
            }
            self.steps += 1;
            if self.steps > self.max_steps {
                break Err(RuntimeError::StepLimitExceeded(self.max_steps));
            }
            quantum_left -= 1;
            if let SchedPolicy::Random { switch_inv, .. } = self.policy {
                if switch_inv <= 1 || self.rand_below(switch_inv as u64) == 0 {
                    quantum_left = 0;
                }
            }
        };
        bigfoot_obs::count!("vm.runs");
        bigfoot_obs::count!("vm.steps", self.steps);
        bigfoot_obs::count!("vm.context_switches", context_switches);
        bigfoot_obs::count!("vm.threads", self.threads.len());
        run_result?;
        Ok(RunOutcome {
            steps: self.steps,
            threads: self.threads.len(),
            heap_cells: self.heap.cells,
        })
    }

    fn quantum(&self) -> u64 {
        match self.policy {
            SchedPolicy::RoundRobin { quantum } => quantum.max(1) as u64,
            SchedPolicy::Random { .. } => u64::MAX,
        }
    }

    fn wake_blocked(&mut self) {
        for i in 0..self.threads.len() {
            match self.threads[i].status {
                Status::BlockedLock(l) => {
                    let free = self
                        .locks
                        .get(l.0 as usize)
                        .is_none_or(|s| s.owner.is_none() || s.owner == Some(Tid(i as u32)));
                    if free {
                        self.threads[i].status = Status::Runnable;
                        self.blocked_lock -= 1;
                    }
                }
                Status::BlockedJoin(t) if self.threads[t.index()].status == Status::Done => {
                    self.threads[i].status = Status::Runnable;
                    self.blocked_join -= 1;
                }
                _ => {}
            }
        }
    }

    fn pick_next(&mut self, current: usize) -> Result<usize, RuntimeError> {
        let n = self.threads.len();
        match self.policy {
            // First runnable after `current`, wrapping to the lowest
            // index — the same choice as scanning a materialized
            // runnable list, without allocating it.
            SchedPolicy::RoundRobin { .. } => (current + 1..n)
                .chain(0..n)
                .find(|&i| self.threads[i].status == Status::Runnable)
                .ok_or(RuntimeError::Deadlock),
            // One `rand_below(count)` draw over the same count as
            // before, so the generator sequence is unchanged.
            SchedPolicy::Random { .. } => {
                let count = (0..n)
                    .filter(|&i| self.threads[i].status == Status::Runnable)
                    .count();
                if count == 0 {
                    return Err(RuntimeError::Deadlock);
                }
                let k = self.rand_below(count as u64) as usize;
                Ok((0..n)
                    .filter(|&i| self.threads[i].status == Status::Runnable)
                    .nth(k)
                    .expect("k-th runnable thread"))
            }
        }
    }

    /// Re-acquires the monitor a notified `wait` released (or re-blocks
    /// if it is contended) — the cold pre-instruction step.
    fn reacquire_step<S: EventSink>(
        &mut self,
        t: Tid,
        lock: ObjId,
        count: u32,
        sink: &mut S,
    ) -> Result<(), RuntimeError> {
        let ti = t.index();
        let state = lock_mut(&mut self.locks, lock);
        match state.owner {
            None => {
                state.owner = Some(t);
                state.count = count;
                self.threads[ti].frames.last_mut().expect("frame").reacquire = None;
                sink.event(&Event::Acquire { t, lock });
            }
            Some(owner) if owner == t => unreachable!("waiter cannot hold the lock"),
            Some(_) => {
                self.threads[ti].status = Status::BlockedLock(lock);
                self.blocked_lock += 1;
            }
        }
        Ok(())
    }

    /// Executes up to `budget` consecutive instructions of `t` that
    /// need at most the current thread — the frame-local arms, `call`
    /// and `ret` (which only touch this thread's own frame stack),
    /// and, when `lock_ok` certifies that no thread is `BlockedLock`,
    /// uncontended lock acquires and releases — in a tight loop that
    /// keeps the frame borrow live across steps instead of re-entering
    /// the scheduler per step.
    ///
    /// None of the admitted instructions can wake another thread
    /// (blocking arms and `fork`/`join`/`wait`/`notify` exit the
    /// slice; a root `ret` marks this thread `Done` — the only
    /// transition a `BlockedJoin` thread wakes on — and ends the slice
    /// immediately), so with `lock_ok` established at entry,
    /// `wake_blocked`, the termination scan, and `pick_next` are all
    /// provably no-ops for the whole slice; the caller settles quantum
    /// and step accounting from the returned count. While some thread
    /// *is* blocked on a lock, lock instructions stay cold, because
    /// their per-step wake timing is observable (a thread woken by one
    /// release can re-block on the very next step if the slice
    /// re-acquires). Stops early (without error)
    /// at the first instruction that needs the full machine — or a
    /// pending monitor re-acquire — which the caller runs through
    /// [`CompiledVm::step`]. Dispatches through the same `exec_*`
    /// bodies and lock/call logic as `step`, so a slice raises errors
    /// and emits events byte-identically to stepping.
    fn run_slice<S: EventSink>(
        &mut self,
        t: Tid,
        budget: u64,
        lock_ok: bool,
        sink: &mut S,
    ) -> (u64, Result<(), RuntimeError>) {
        let prog = self.prog;
        let CompiledVm {
            heap,
            threads,
            locks,
            regs,
            final_envs,
            live,
            pool,
            ..
        } = self;
        let thread = &mut threads[t.index()];
        let mut executed = 0u64;
        'frames: while executed < budget {
            let Some(frame) = thread.frames.last_mut() else {
                break;
            };
            if frame.reacquire.is_some() {
                break;
            }
            // The top frame stays borrowed across this inner loop; the
            // arms that change the frame stack hand a `SliceExit` back
            // out so the push/pop runs once the borrow is dead.
            let exit = loop {
                if executed >= budget {
                    break 'frames;
                }
                let r = match &prog.code[frame.pc as usize] {
                    Instr::Skip { next } => {
                        frame.pc = *next;
                        Ok(())
                    }
                    Instr::Assign { dst, e, next } => {
                        exec_assign(prog, heap, regs, frame, *dst, *e, *next)
                    }
                    Instr::Rename { fresh, old, next } => {
                        exec_rename(frame, *fresh, *old, *next);
                        Ok(())
                    }
                    Instr::Branch {
                        cond,
                        then_pc,
                        else_pc,
                    } => exec_branch(prog, heap, regs, frame, *cond, *then_pc, *else_pc),
                    Instr::LoopEnter { head } => {
                        frame.pc = *head;
                        Ok(())
                    }
                    Instr::LoopJunction { exit, body, done } => {
                        exec_loop_junction(prog, heap, regs, frame, *exit, *body, *done)
                    }
                    Instr::New {
                        dst,
                        class,
                        name,
                        next,
                    } => exec_new(prog, heap, frame, sink, t, *dst, *class, *name, *next),
                    Instr::NewArray { dst, len, next } => {
                        exec_new_array(prog, heap, regs, frame, sink, t, *dst, *len, *next)
                    }
                    Instr::ReadField {
                        dst,
                        obj,
                        site,
                        next,
                    } => exec_read_field(prog, heap, frame, sink, t, *dst, *obj, *site, *next),
                    Instr::WriteField {
                        obj,
                        site,
                        src,
                        next,
                    } => exec_write_field(prog, heap, frame, sink, t, *obj, *site, *src, *next),
                    Instr::ReadArr {
                        dst,
                        arr,
                        idx,
                        next,
                    } => exec_read_arr(prog, heap, regs, frame, sink, t, *dst, *arr, *idx, *next),
                    Instr::WriteArr {
                        arr,
                        idx,
                        src,
                        next,
                    } => exec_write_arr(prog, heap, regs, frame, sink, t, *arr, *idx, *src, *next),
                    Instr::Check { site, next } => {
                        exec_check(prog, heap, regs, frame, sink, t, *site, *next)
                    }
                    Instr::Acquire { lock, next } if lock_ok => {
                        let obj = match frame.get_obj(prog, *lock) {
                            Ok(o) => o,
                            Err(e) => return (executed, Err(e)),
                        };
                        let state = lock_mut(locks, obj);
                        match state.owner {
                            None => {
                                state.owner = Some(t);
                                state.count = 1;
                            }
                            Some(owner) if owner == t => state.count += 1,
                            // Contended: `step` blocks the thread, so
                            // nothing is consumed here.
                            Some(_) => break SliceExit::Cold,
                        }
                        sink.event(&Event::Acquire { t, lock: obj });
                        frame.pc = *next;
                        Ok(())
                    }
                    Instr::Release { lock, next } if lock_ok => {
                        let obj = match frame.get_obj(prog, *lock) {
                            Ok(o) => o,
                            Err(e) => return (executed, Err(e)),
                        };
                        let state = lock_mut(locks, obj);
                        if state.owner != Some(t) || state.count == 0 {
                            return (executed, Err(RuntimeError::IllegalRelease));
                        }
                        state.count -= 1;
                        if state.count == 0 {
                            state.owner = None;
                        }
                        sink.event(&Event::Release { t, lock: obj });
                        frame.pc = *next;
                        Ok(())
                    }
                    Instr::Call { dst, site, next } => {
                        match build_frame(prog, heap, pool, frame, *site, Some(*dst)) {
                            Ok(callee) => {
                                frame.pc = *next;
                                break SliceExit::Call(callee);
                            }
                            Err(e) => return (executed, Err(e)),
                        }
                    }
                    Instr::Ret { expr } => {
                        let v = match expr {
                            Some(e) => match eval(prog, heap, frame, regs, *e) {
                                Ok(v) => v,
                                Err(e) => return (executed, Err(e)),
                            },
                            None => Value::Int(0),
                        };
                        break SliceExit::Ret(v);
                    }
                    // Thread-table instructions — and lock instructions
                    // while some other thread is blocked — need the
                    // full scheduler: hand back without consuming.
                    Instr::Acquire { .. }
                    | Instr::Release { .. }
                    | Instr::Fork { .. }
                    | Instr::Join { .. }
                    | Instr::Wait { .. }
                    | Instr::Notify { .. } => break SliceExit::Cold,
                };
                if let Err(e) = r {
                    return (executed, Err(e));
                }
                executed += 1;
            };
            match exit {
                SliceExit::Call(callee) => {
                    thread.frames.push(callee);
                    executed += 1;
                }
                SliceExit::Ret(v) => {
                    let popped = thread.frames.pop().expect("frame");
                    executed += 1;
                    if let Some(caller) = thread.frames.last_mut() {
                        if let Some(dst) = popped.ret_dst {
                            caller.set(dst, v);
                        }
                        pool.push(popped);
                    } else {
                        // Thread root completed: record its env, mark
                        // it `Done`, and end the slice — the caller's
                        // next scan wakes any joiners, exactly as when
                        // `step` runs the `ret`.
                        final_envs[t.index()] = Some(build_env(prog, &popped));
                        pool.push(popped);
                        thread.status = Status::Done;
                        *live -= 1;
                        sink.event(&Event::ThreadExit { t });
                        break 'frames;
                    }
                }
                SliceExit::Cold => break 'frames,
            }
        }
        (executed, Ok(()))
    }

    /// Executes one instruction (= one interpreter work item) of `t`.
    fn step<S: EventSink>(&mut self, t: Tid, sink: &mut S) -> Result<(), RuntimeError> {
        let prog = self.prog;
        let ti = t.index();
        // One frame lookup per step: the hot arms below reuse this
        // `&mut` borrow; arms that need the whole thread table (call,
        // fork, join, ret) re-index, which NLL permits because `frame`
        // is dead on those paths.
        let Some(frame) = self.threads[ti].frames.last_mut() else {
            self.threads[ti].status = Status::Done;
            self.live -= 1;
            return Ok(());
        };
        if let Some((lock, count)) = frame.reacquire {
            return self.reacquire_step(t, lock, count, sink);
        }
        match &prog.code[frame.pc as usize] {
            Instr::Skip { next } => {
                frame.pc = *next;
                Ok(())
            }
            Instr::Assign { dst, e, next } => {
                exec_assign(prog, &self.heap, &mut self.regs, frame, *dst, *e, *next)
            }
            Instr::Rename { fresh, old, next } => {
                exec_rename(frame, *fresh, *old, *next);
                Ok(())
            }
            Instr::Branch {
                cond,
                then_pc,
                else_pc,
            } => exec_branch(
                prog,
                &self.heap,
                &mut self.regs,
                frame,
                *cond,
                *then_pc,
                *else_pc,
            ),
            Instr::LoopEnter { head } => {
                frame.pc = *head;
                Ok(())
            }
            Instr::LoopJunction { exit, body, done } => {
                exec_loop_junction(prog, &self.heap, &mut self.regs, frame, *exit, *body, *done)
            }
            Instr::Acquire { lock, next } => {
                let obj = frame.get_obj(prog, *lock)?;
                let state = lock_mut(&mut self.locks, obj);
                match state.owner {
                    None => {
                        state.owner = Some(t);
                        state.count = 1;
                        sink.event(&Event::Acquire { t, lock: obj });
                        frame.pc = *next;
                    }
                    Some(owner) if owner == t => {
                        state.count += 1;
                        sink.event(&Event::Acquire { t, lock: obj });
                        frame.pc = *next;
                    }
                    // Retry this same instruction once woken.
                    Some(_) => {
                        self.threads[ti].status = Status::BlockedLock(obj);
                        self.blocked_lock += 1;
                    }
                }
                Ok(())
            }
            Instr::Release { lock, next } => {
                let obj = frame.get_obj(prog, *lock)?;
                let state = lock_mut(&mut self.locks, obj);
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                state.count -= 1;
                if state.count == 0 {
                    state.owner = None;
                }
                sink.event(&Event::Release { t, lock: obj });
                frame.pc = *next;
                Ok(())
            }
            Instr::New {
                dst,
                class,
                name,
                next,
            } => exec_new(
                prog,
                &mut self.heap,
                frame,
                sink,
                t,
                *dst,
                *class,
                *name,
                *next,
            ),
            Instr::NewArray { dst, len, next } => exec_new_array(
                prog,
                &mut self.heap,
                &mut self.regs,
                frame,
                sink,
                t,
                *dst,
                *len,
                *next,
            ),
            Instr::ReadField {
                dst,
                obj,
                site,
                next,
            } => exec_read_field(prog, &self.heap, frame, sink, t, *dst, *obj, *site, *next),
            Instr::WriteField {
                obj,
                site,
                src,
                next,
            } => exec_write_field(
                prog,
                &mut self.heap,
                frame,
                sink,
                t,
                *obj,
                *site,
                *src,
                *next,
            ),
            Instr::ReadArr {
                dst,
                arr,
                idx,
                next,
            } => exec_read_arr(
                prog,
                &self.heap,
                &mut self.regs,
                frame,
                sink,
                t,
                *dst,
                *arr,
                *idx,
                *next,
            ),
            Instr::WriteArr {
                arr,
                idx,
                src,
                next,
            } => exec_write_arr(
                prog,
                &mut self.heap,
                &mut self.regs,
                frame,
                sink,
                t,
                *arr,
                *idx,
                *src,
                *next,
            ),
            Instr::Call { dst, site, next } => {
                let callee =
                    build_frame(prog, &self.heap, &mut self.pool, frame, *site, Some(*dst))?;
                frame.pc = *next;
                self.threads[ti].frames.push(callee);
                Ok(())
            }
            Instr::Fork { dst, site, next } => {
                let callee = build_frame(prog, &self.heap, &mut self.pool, frame, *site, None)?;
                let child = Tid(self.threads.len() as u32);
                self.threads.push(VmThread {
                    frames: vec![callee],
                    status: Status::Runnable,
                });
                self.final_envs.push(None);
                self.live += 1;
                let frame = self.threads[ti].frames.last_mut().expect("frame");
                frame.set(*dst, Value::Thread(child));
                frame.pc = *next;
                sink.event(&Event::Fork { parent: t, child });
                Ok(())
            }
            Instr::Join { t: tslot, next } => {
                let target = match frame.get(prog, *tslot)? {
                    Value::Thread(x) => x,
                    other => {
                        return Err(RuntimeError::TypeError(format!(
                            "`{}` is {other}, expected a thread handle",
                            frame.name(prog, *tslot)
                        )))
                    }
                };
                if self.threads[target.index()].status == Status::Done {
                    sink.event(&Event::Join {
                        parent: t,
                        child: target,
                    });
                    self.threads[ti].frames.last_mut().expect("frame").pc = *next;
                } else {
                    // Retry this same instruction once woken.
                    self.threads[ti].status = Status::BlockedJoin(target);
                    self.blocked_join += 1;
                }
                Ok(())
            }
            Instr::Wait { lock, next } => {
                let obj = frame.get_obj(prog, *lock)?;
                let state = lock_mut(&mut self.locks, obj);
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                // Fully release the monitor, park, and re-acquire (with
                // the saved reentrancy count) after the notify.
                let count = state.count;
                state.owner = None;
                state.count = 0;
                sink.event(&Event::Release { t, lock: obj });
                frame.reacquire = Some((obj, count));
                frame.pc = *next;
                // `WaitingNotify` is not wakeable by `wake_blocked`;
                // `Notify` converts it to `BlockedLock` (which is).
                self.threads[ti].status = Status::WaitingNotify(obj);
                Ok(())
            }
            Instr::Notify { lock, next } => {
                let obj = frame.get_obj(prog, *lock)?;
                let state = lock_mut(&mut self.locks, obj);
                if state.owner != Some(t) || state.count == 0 {
                    return Err(RuntimeError::IllegalRelease);
                }
                frame.pc = *next;
                // Wake every waiter (Java notifyAll); they contend for
                // the monitor once it is released.
                for th in &mut self.threads {
                    if th.status == Status::WaitingNotify(obj) {
                        th.status = Status::BlockedLock(obj);
                        self.blocked_lock += 1;
                    }
                }
                Ok(())
            }
            Instr::Check { site, next } => exec_check(
                prog,
                &self.heap,
                &mut self.regs,
                frame,
                sink,
                t,
                *site,
                *next,
            ),
            Instr::Ret { expr } => {
                let v = match expr {
                    Some(e) => eval(prog, &self.heap, frame, &mut self.regs, *e)?,
                    None => Value::Int(0),
                };
                let popped = self.threads[ti].frames.pop().expect("frame");
                if let Some(caller) = self.threads[ti].frames.last_mut() {
                    if let Some(dst) = popped.ret_dst {
                        caller.set(dst, v);
                    }
                } else {
                    // Thread root completed.
                    self.final_envs[ti] = Some(build_env(prog, &popped));
                    self.threads[ti].status = Status::Done;
                    self.live -= 1;
                    sink.event(&Event::ThreadExit { t });
                }
                self.pool.push(popped);
                Ok(())
            }
        }
    }
}

/// Builds the callee frame for a `call`/`fork` site: receiver and
/// method resolution, arity check, then argument binding — in the
/// interpreter's exact error order. The callee recycles a frame from
/// `pool` when one fits.
fn build_frame(
    prog: &CompiledProgram,
    heap: &Heap,
    pool: &mut Vec<VmFrame>,
    frame: &VmFrame,
    site: u32,
    ret_dst: Option<SlotId>,
) -> Result<VmFrame, RuntimeError> {
    let site = &prog.call_sites[site as usize];
    let o = frame.get_obj(prog, site.recv)?;
    let class = heap.object(o).class;
    let m_id = match site.by_class[class] {
        CallTarget::Method(m) => m,
        CallTarget::Arity { expected } => {
            return Err(RuntimeError::TypeError(format!(
                "method `{}` expects {expected} arguments, got {}",
                site.meth,
                site.args.len()
            )))
        }
        CallTarget::Unknown => {
            return Err(RuntimeError::UnknownName(format!(
                "method `{}` in class `{}`",
                site.meth, prog.classes[class].name
            )))
        }
    };
    let m = &prog.methods[m_id as usize];
    let mut callee = VmFrame::reuse(pool, m_id, m, ret_dst);
    callee.set(m.this_slot, Value::Obj(o));
    for (&p, &a) in m.params.iter().zip(site.args.iter()) {
        let v = frame.get(prog, a)?;
        callee.set(p, v);
    }
    Ok(callee)
}

/// The frame-local instruction bodies below are shared between
/// [`CompiledVm::step`] (one instruction under the full scheduler) and
/// [`CompiledVm::run_slice`] (a quantum's worth without re-entering the
/// scheduler), so both dispatch sites execute identical semantics.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_assign(
    prog: &CompiledProgram,
    heap: &Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    dst: SlotId,
    e: ExprId,
    next: u32,
) -> Result<(), RuntimeError> {
    let v = eval(prog, heap, frame, regs, e)?;
    frame.set(dst, v);
    frame.pc = next;
    Ok(())
}

#[inline(always)]
fn exec_rename(frame: &mut VmFrame, fresh: SlotId, old: SlotId, next: u32) {
    // A rename may precede the variable's first assignment; default to
    // 0, like the interpreter.
    let v = if frame.is_init(old) {
        frame.slots[old as usize]
    } else {
        Value::Int(0)
    };
    frame.set(fresh, v);
    frame.pc = next;
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_branch(
    prog: &CompiledProgram,
    heap: &Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    cond: ExprId,
    then_pc: u32,
    else_pc: u32,
) -> Result<(), RuntimeError> {
    let b = as_bool(eval(prog, heap, frame, regs, cond)?)?;
    frame.pc = if b { then_pc } else { else_pc };
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_loop_junction(
    prog: &CompiledProgram,
    heap: &Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    exit: ExprId,
    body: u32,
    done: u32,
) -> Result<(), RuntimeError> {
    let b = as_bool(eval(prog, heap, frame, regs, exit)?)?;
    frame.pc = if b { done } else { body };
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_new<S: EventSink>(
    prog: &CompiledProgram,
    heap: &mut Heap,
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    dst: SlotId,
    class: Option<u32>,
    name: Sym,
    next: u32,
) -> Result<(), RuntimeError> {
    let Some(ci) = class else {
        return Err(RuntimeError::UnknownName(format!("class `{name}`")));
    };
    let nfields = prog.classes[ci as usize].nfields as usize;
    let obj = heap.alloc_object(ci as usize, nfields);
    frame.set(dst, Value::Obj(obj));
    frame.pc = next;
    sink.event(&Event::AllocObj {
        t,
        obj,
        class: ci,
        fields: nfields as u32,
    });
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_new_array<S: EventSink>(
    prog: &CompiledProgram,
    heap: &mut Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    dst: SlotId,
    len: ExprId,
    next: u32,
) -> Result<(), RuntimeError> {
    let n = as_int(eval(prog, heap, frame, regs, len)?)?;
    if n < 0 {
        return Err(RuntimeError::NegativeArrayLength(n));
    }
    let arr = heap.alloc_array(n as usize);
    frame.set(dst, Value::Arr(arr));
    frame.pc = next;
    sink.event(&Event::AllocArr {
        t,
        arr,
        len: n as u64,
    });
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_read_field<S: EventSink>(
    prog: &CompiledProgram,
    heap: &Heap,
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    dst: SlotId,
    obj: SlotId,
    site: u32,
    next: u32,
) -> Result<(), RuntimeError> {
    let o = frame.get_obj(prog, obj)?;
    let class = heap.object(o).class;
    let (fi, volatile) = field_res(prog, site, class)?;
    let v = heap.object(o).fields[fi as usize];
    frame.set(dst, v);
    frame.pc = next;
    if volatile {
        sink.event(&Event::VolatileRead {
            t,
            obj: o,
            field: fi,
        });
    } else {
        sink.event(&Event::Access {
            t,
            kind: AccessKind::Read,
            loc: Loc::Field(o, fi),
        });
    }
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_write_field<S: EventSink>(
    prog: &CompiledProgram,
    heap: &mut Heap,
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    obj: SlotId,
    site: u32,
    src: SlotId,
    next: u32,
) -> Result<(), RuntimeError> {
    let o = frame.get_obj(prog, obj)?;
    let class = heap.object(o).class;
    let (fi, volatile) = field_res(prog, site, class)?;
    let v = frame.get(prog, src)?;
    heap.objects[o.0 as usize].fields[fi as usize] = v;
    frame.pc = next;
    if volatile {
        sink.event(&Event::VolatileWrite {
            t,
            obj: o,
            field: fi,
        });
    } else {
        sink.event(&Event::Access {
            t,
            kind: AccessKind::Write,
            loc: Loc::Field(o, fi),
        });
    }
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_read_arr<S: EventSink>(
    prog: &CompiledProgram,
    heap: &Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    dst: SlotId,
    arr: SlotId,
    idx: ExprId,
    next: u32,
) -> Result<(), RuntimeError> {
    let a = frame.get_arr(prog, arr)?;
    let i = as_int(eval(prog, heap, frame, regs, idx)?)?;
    let len = heap.array(a).data.len();
    if i < 0 || i as usize >= len {
        return Err(RuntimeError::IndexOutOfBounds {
            array: a,
            index: i,
            len,
        });
    }
    let v = heap.array(a).data[i as usize];
    frame.set(dst, v);
    frame.pc = next;
    sink.event(&Event::Access {
        t,
        kind: AccessKind::Read,
        loc: Loc::Elem(a, i),
    });
    Ok(())
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_write_arr<S: EventSink>(
    prog: &CompiledProgram,
    heap: &mut Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    arr: SlotId,
    idx: ExprId,
    src: SlotId,
    next: u32,
) -> Result<(), RuntimeError> {
    let a = frame.get_arr(prog, arr)?;
    let i = as_int(eval(prog, heap, frame, regs, idx)?)?;
    let v = frame.get(prog, src)?;
    let len = heap.array(a).data.len();
    if i < 0 || i as usize >= len {
        return Err(RuntimeError::IndexOutOfBounds {
            array: a,
            index: i,
            len,
        });
    }
    heap.arrays[a.0 as usize].data[i as usize] = v;
    frame.pc = next;
    sink.event(&Event::Access {
        t,
        kind: AccessKind::Write,
        loc: Loc::Elem(a, i),
    });
    Ok(())
}

/// Resolves and emits one `check` statement's paths.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn exec_check<S: EventSink>(
    prog: &CompiledProgram,
    heap: &Heap,
    regs: &mut [Value],
    frame: &mut VmFrame,
    sink: &mut S,
    t: Tid,
    site: u32,
    next: u32,
) -> Result<(), RuntimeError> {
    let site = &prog.check_sites[site as usize];
    let mut resolved = Vec::with_capacity(site.paths.len());
    for p in site.paths.iter() {
        match p {
            CPath::Fields { kind, base, fields } => {
                let o = frame.get_obj(prog, *base)?;
                let class = heap.object(o).class;
                let mut idxs = Vec::with_capacity(fields.len());
                for &fsid in fields.iter() {
                    let (fi, _) = field_res(prog, fsid, class)?;
                    idxs.push(fi);
                }
                resolved.push((*kind, CheckTarget::Fields(o, idxs)));
            }
            CPath::Arr {
                kind,
                base,
                lo,
                hi,
                step,
            } => {
                let a = frame.get_arr(prog, *base)?;
                let lo = as_int(eval(prog, heap, frame, regs, *lo)?)?;
                let hi = as_int(eval(prog, heap, frame, regs, *hi)?)?;
                resolved.push((
                    *kind,
                    CheckTarget::Range(
                        a,
                        ConcreteRange {
                            lo,
                            hi,
                            step: *step,
                        },
                    ),
                ));
            }
        }
    }
    sink.event(&Event::Check { t, paths: resolved });
    frame.pc = next;
    Ok(())
}

/// Resolves a field site against a run-time class, with the
/// interpreter's exact unknown-field message.
#[inline(always)]
fn field_res(prog: &CompiledProgram, site: u32, class: usize) -> Result<(u32, bool), RuntimeError> {
    let fs = &prog.field_sites[site as usize];
    match fs.by_class[class] {
        Some(r) => Ok(r),
        None => Err(unknown_field(prog, site, class)),
    }
}

#[cold]
#[inline(never)]
fn unknown_field(prog: &CompiledProgram, site: u32, class: usize) -> RuntimeError {
    let fs = &prog.field_sites[site as usize];
    RuntimeError::UnknownName(format!(
        "field `{}` in class `{}`",
        fs.field, prog.classes[class].name
    ))
}

/// Reconstructs an interpreter-style [`Env`] from a root frame's slots
/// (for `final_env`).
fn build_env(prog: &CompiledProgram, frame: &VmFrame) -> Env {
    let names = &prog.methods[frame.method as usize].slot_names;
    let mut env = Env::default();
    for (i, name) in names.iter().enumerate() {
        if frame.is_init(i as SlotId) {
            env.insert(*name, frame.slots[i]);
        }
    }
    env
}

#[inline(always)]
fn load(prog: &CompiledProgram, frame: &VmFrame, a: Operand) -> Result<Value, RuntimeError> {
    match a {
        Operand::Const(v) => Ok(v),
        Operand::Slot(s) => frame.get(prog, s),
    }
}

#[inline(always)]
fn arr_len(
    prog: &CompiledProgram,
    heap: &Heap,
    frame: &VmFrame,
    s: SlotId,
) -> Result<Value, RuntimeError> {
    match frame.get(prog, s)? {
        Value::Arr(id) => Ok(Value::Int(heap.array(id).data.len() as i64)),
        other => Err(slot_type_error(prog, frame, s, other, "an array")),
    }
}

#[inline(always)]
fn apply_un(op: Unop, v: Value) -> Result<Value, RuntimeError> {
    Ok(match op {
        Unop::Neg => Value::Int(as_int(v)?.wrapping_neg()),
        Unop::Not => Value::Bool(!as_bool(v)?),
    })
}

/// Applies a binary operator with the recursive evaluator's exact
/// semantics: wrapping arithmetic, divisor checked before dividend,
/// whole-`Value` equality, and `&&`/`||` short-circuiting the *type
/// check* of the right operand (both operands are always evaluated).
#[inline(always)]
fn apply_bin(op: Binop, va: Value, vb: Value) -> Result<Value, RuntimeError> {
    Ok(match op {
        Binop::Add => Value::Int(as_int(va)?.wrapping_add(as_int(vb)?)),
        Binop::Sub => Value::Int(as_int(va)?.wrapping_sub(as_int(vb)?)),
        Binop::Mul => Value::Int(as_int(va)?.wrapping_mul(as_int(vb)?)),
        Binop::Div => {
            let d = as_int(vb)?;
            if d == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(as_int(va)?.wrapping_div(d))
        }
        Binop::Mod => {
            let d = as_int(vb)?;
            if d == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(as_int(va)?.wrapping_rem(d))
        }
        Binop::Eq => Value::Bool(va == vb),
        Binop::Ne => Value::Bool(va != vb),
        Binop::Lt => Value::Bool(as_int(va)? < as_int(vb)?),
        Binop::Le => Value::Bool(as_int(va)? <= as_int(vb)?),
        Binop::Gt => Value::Bool(as_int(va)? > as_int(vb)?),
        Binop::Ge => Value::Bool(as_int(va)? >= as_int(vb)?),
        Binop::And => Value::Bool(as_bool(va)? && as_bool(vb)?),
        Binop::Or => Value::Bool(as_bool(va)? || as_bool(vb)?),
    })
}

/// Evaluates a lowered expression against `frame`'s slots.
#[inline(always)]
fn eval(
    prog: &CompiledProgram,
    heap: &Heap,
    frame: &VmFrame,
    regs: &mut [Value],
    e: ExprId,
) -> Result<Value, RuntimeError> {
    match &prog.exprs[e as usize] {
        CExpr::Const(v) => Ok(*v),
        CExpr::Slot(s) => frame.get(prog, *s),
        CExpr::Len(s) => arr_len(prog, heap, frame, *s),
        CExpr::Un { op, a } => apply_un(*op, load(prog, frame, *a)?),
        CExpr::Bin { op, a, b } => {
            let va = load(prog, frame, *a)?;
            let vb = load(prog, frame, *b)?;
            apply_bin(*op, va, vb)
        }
        CExpr::Ops { ops, out } => {
            for op in ops.iter() {
                match *op {
                    EOp::Const { r, v } => regs[r as usize] = v,
                    EOp::Slot { r, s } => regs[r as usize] = frame.get(prog, s)?,
                    EOp::Len { r, s } => regs[r as usize] = arr_len(prog, heap, frame, s)?,
                    EOp::Un { op, r } => regs[r as usize] = apply_un(op, regs[r as usize])?,
                    EOp::Bin { op, a, b } => {
                        regs[a as usize] = apply_bin(op, regs[a as usize], regs[b as usize])?
                    }
                }
            }
            Ok(regs[*out as usize])
        }
    }
}
