//! Lowering from the checked AST to flat register bytecode.
//!
//! See the [module docs](super) for the design. The invariant that every
//! downstream consumer leans on: **one instruction per interpreter work
//! item**. `If` lowers to one `Branch`, `Loop` to one `LoopEnter` plus
//! one `LoopJunction`, a finished frame to one `Ret` — so a compiled
//! schedule takes exactly the same number of steps as the interpreted
//! one, which keeps the scheduler's quantum accounting and RNG draw
//! sequence (and therefore the event stream) bit-identical.

use crate::ast::{Binop, Block, Expr, Path, Program, Stmt, StmtKind, Unop};
use crate::interp::{ProgramIndex, Value};
use crate::sym::Sym;
use bigfoot_vc::AccessKind;
use std::collections::HashMap;

/// Index of a lowered expression in [`CompiledProgram::exprs`].
pub(crate) type ExprId = u32;

/// A frame slot (dense per-method local index).
pub(crate) type SlotId = u32;

/// A scratch register in the VM's shared expression register file.
pub(crate) type Reg = u32;

/// An atomic operand: a literal or a frame slot.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Operand {
    Const(Value),
    Slot(SlotId),
}

/// One postfix register op of a flattened expression.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EOp {
    /// `regs[r] = v`
    Const { r: Reg, v: Value },
    /// `regs[r] = slots[s]` (unbound-variable check included)
    Slot { r: Reg, s: SlotId },
    /// `regs[r] = slots[s].length`
    Len { r: Reg, s: SlotId },
    /// `regs[r] = op regs[r]`
    Un { op: Unop, r: Reg },
    /// `regs[a] = regs[a] op regs[b]`
    Bin { op: Binop, a: Reg, b: Reg },
}

/// A lowered expression. The first five shapes cover almost everything a
/// real (A-normal-form) program contains and evaluate without touching
/// the register file; `Ops` is the general fallback.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Const(Value),
    Slot(SlotId),
    Len(SlotId),
    Un { op: Unop, a: Operand },
    Bin { op: Binop, a: Operand, b: Operand },
    Ops { ops: Box<[EOp]>, out: Reg },
}

/// Per-class resolution of one field name: `(field index, volatile?)`.
pub(crate) type FieldRes = Option<(u32, bool)>;

/// A field-access site, pre-bound for every class in the program.
#[derive(Debug)]
pub(crate) struct FieldSite {
    pub(crate) field: Sym,
    /// Indexed by the receiver's run-time class.
    pub(crate) by_class: Box<[FieldRes]>,
}

/// Per-class resolution of one call site.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CallTarget {
    /// Resolved: the compiled method id (arity already checked).
    Method(u32),
    /// The class has the method, but with a different parameter count.
    Arity { expected: u32 },
    /// The class has no method of this name.
    Unknown,
}

/// A `call`/`fork` site: receiver and argument slots plus the per-class
/// target table.
#[derive(Debug)]
pub(crate) struct CallSite {
    pub(crate) meth: Sym,
    pub(crate) recv: SlotId,
    pub(crate) args: Box<[SlotId]>,
    pub(crate) by_class: Box<[CallTarget]>,
}

/// One lowered `check(C)` path.
#[derive(Debug)]
pub(crate) enum CPath {
    Fields {
        kind: AccessKind,
        base: SlotId,
        /// Field-site ids, one per path component.
        fields: Box<[u32]>,
    },
    Arr {
        kind: AccessKind,
        base: SlotId,
        lo: ExprId,
        hi: ExprId,
        step: i64,
    },
}

/// A StaticBF check site compiled to a direct sink call.
#[derive(Debug)]
pub(crate) struct CheckSite {
    pub(crate) paths: Box<[CPath]>,
}

/// What the VM needs to know about a class at run time.
#[derive(Debug)]
pub(crate) struct ClassMeta {
    pub(crate) name: Sym,
    pub(crate) nfields: u32,
}

/// One bytecode instruction. Every variant carries its explicit
/// successor pc(s); "falling through" does not exist, so lowering is
/// free to lay blocks out in whatever order avoids extra steps.
#[derive(Debug)]
pub(crate) enum Instr {
    Skip {
        next: u32,
    },
    Assign {
        dst: SlotId,
        e: ExprId,
        next: u32,
    },
    Rename {
        fresh: SlotId,
        old: SlotId,
        next: u32,
    },
    Branch {
        cond: ExprId,
        then_pc: u32,
        else_pc: u32,
    },
    LoopEnter {
        head: u32,
    },
    /// Mid-loop exit test: `exit` true → `done`, else → `body` (the
    /// tail-then-head path back to this junction).
    LoopJunction {
        exit: ExprId,
        body: u32,
        done: u32,
    },
    Acquire {
        lock: SlotId,
        next: u32,
    },
    Release {
        lock: SlotId,
        next: u32,
    },
    New {
        dst: SlotId,
        class: Option<u32>,
        name: Sym,
        next: u32,
    },
    NewArray {
        dst: SlotId,
        len: ExprId,
        next: u32,
    },
    ReadField {
        dst: SlotId,
        obj: SlotId,
        site: u32,
        next: u32,
    },
    WriteField {
        obj: SlotId,
        site: u32,
        src: SlotId,
        next: u32,
    },
    ReadArr {
        dst: SlotId,
        arr: SlotId,
        idx: ExprId,
        next: u32,
    },
    WriteArr {
        arr: SlotId,
        idx: ExprId,
        src: SlotId,
        next: u32,
    },
    Call {
        dst: SlotId,
        site: u32,
        next: u32,
    },
    Fork {
        dst: SlotId,
        site: u32,
        next: u32,
    },
    Join {
        t: SlotId,
        next: u32,
    },
    Wait {
        lock: SlotId,
        next: u32,
    },
    Notify {
        lock: SlotId,
        next: u32,
    },
    Check {
        site: u32,
        next: u32,
    },
    /// Frame return: evaluate `expr` (`None` ⇒ `0`), pop the frame. One
    /// step, exactly like the interpreter's `pop_frame`.
    Ret {
        expr: Option<ExprId>,
    },
}

/// A compiled method (or the `main` block, which is method 0).
#[derive(Debug)]
pub(crate) struct CompiledMethod {
    pub(crate) entry: u32,
    pub(crate) n_slots: u32,
    /// Slot → variable name, for error messages and `final_env`.
    pub(crate) slot_names: Box<[Sym]>,
    /// Slot receiving `this` (methods only).
    pub(crate) this_slot: SlotId,
    /// Parameter slots in declaration order.
    pub(crate) params: Box<[SlotId]>,
}

/// A program lowered to register bytecode, ready to run any number of
/// times on a [`CompiledVm`](super::CompiledVm).
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) code: Box<[Instr]>,
    pub(crate) exprs: Box<[CExpr]>,
    /// `methods[0]` is `main`; class methods follow in declaration order.
    pub(crate) methods: Box<[CompiledMethod]>,
    pub(crate) field_sites: Box<[FieldSite]>,
    pub(crate) call_sites: Box<[CallSite]>,
    pub(crate) check_sites: Box<[CheckSite]>,
    pub(crate) classes: Box<[ClassMeta]>,
    /// Size of the shared expression register file.
    pub(crate) max_regs: u32,
}

impl CompiledProgram {
    /// Number of bytecode instructions.
    pub fn instr_count(&self) -> usize {
        self.code.len()
    }
}

/// Lowers `program` (typically after `bigfoot` instrumentation placed
/// its `check` statements) into flat register bytecode.
///
/// Compilation is pure name/shape resolution: it never fails, even on
/// programs that will raise at run time (an unknown class or method in
/// dead code must still *run*, exactly as it does under the
/// interpreter, and only error when reached).
pub fn compile(program: &Program) -> CompiledProgram {
    let _span = bigfoot_obs::span!("vm.compile");
    let index = ProgramIndex::build(program);
    let classes: Box<[ClassMeta]> = program
        .classes
        .iter()
        .map(|c| ClassMeta {
            name: c.name,
            nfields: c.fields.len() as u32,
        })
        .collect();
    // Assign compiled-method ids up front so call sites in any body can
    // reference any method: 0 = main, then (class, method) in order.
    let mut method_ids: HashMap<(usize, usize), u32> = HashMap::new();
    let mut next_id = 1u32;
    for (ci, c) in program.classes.iter().enumerate() {
        for mi in 0..c.methods.len() {
            method_ids.insert((ci, mi), next_id);
            next_id += 1;
        }
    }
    let mut ctx = Ctx {
        program,
        index: &index,
        method_ids,
        code: Vec::new(),
        exprs: Vec::new(),
        field_sites: Vec::new(),
        field_site_ids: HashMap::new(),
        call_sites: Vec::new(),
        check_sites: Vec::new(),
        max_regs: 0,
    };
    let mut methods = Vec::with_capacity(next_id as usize);
    methods.push(ctx.lower_method(&[], &program.main, None));
    for c in &program.classes {
        for m in &c.methods {
            methods.push(ctx.lower_method(&m.params, &m.body, Some(&m.ret)));
        }
    }
    bigfoot_obs::count!("vm.compiles");
    bigfoot_obs::count!("vm.compiled_instrs", ctx.code.len());
    CompiledProgram {
        code: ctx.code.into_boxed_slice(),
        exprs: ctx.exprs.into_boxed_slice(),
        methods: methods.into_boxed_slice(),
        field_sites: ctx.field_sites.into_boxed_slice(),
        call_sites: ctx.call_sites.into_boxed_slice(),
        check_sites: ctx.check_sites.into_boxed_slice(),
        classes,
        max_regs: ctx.max_regs,
    }
}

/// Program-wide lowering state (shared pools + resolution tables).
struct Ctx<'p> {
    program: &'p Program,
    index: &'p ProgramIndex,
    method_ids: HashMap<(usize, usize), u32>,
    code: Vec<Instr>,
    exprs: Vec<CExpr>,
    field_sites: Vec<FieldSite>,
    /// Field sites depend only on the field *name*, so they are shared.
    field_site_ids: HashMap<Sym, u32>,
    call_sites: Vec<CallSite>,
    check_sites: Vec<CheckSite>,
    max_regs: u32,
}

/// An unresolved successor: instruction `pc`'s `succ` field awaits the
/// continuation address.
#[derive(Debug, Clone, Copy)]
struct Hole {
    pc: u32,
    succ: Succ,
}

#[derive(Debug, Clone, Copy)]
enum Succ {
    Next,
    Then,
    Else,
    LoopDone,
}

impl Ctx<'_> {
    fn field_site(&mut self, field: Sym) -> u32 {
        if let Some(&id) = self.field_site_ids.get(&field) {
            return id;
        }
        let by_class = (0..self.program.classes.len())
            .map(|ci| {
                self.index
                    .field(ci, field)
                    .map(|fi| (fi, self.index.is_volatile(ci, fi)))
            })
            .collect();
        let id = self.field_sites.len() as u32;
        self.field_sites.push(FieldSite { field, by_class });
        self.field_site_ids.insert(field, id);
        id
    }

    /// Lowers one body. `ret` is the declared return expression of a
    /// class method (which also binds `this`); `None` for `main`.
    fn lower_method(&mut self, params: &[Sym], body: &Block, ret: Option<&Expr>) -> CompiledMethod {
        let mut m = MethodLowerer {
            ctx: self,
            slots: HashMap::new(),
            slot_names: Vec::new(),
        };
        let this_slot = if ret.is_some() {
            m.slot(Sym::intern("this"))
        } else {
            0
        };
        let param_slots: Box<[SlotId]> = params.iter().map(|p| m.slot(*p)).collect();
        let entry = m.ctx.code.len() as u32;
        let holes = m.lower_block(body, Vec::new());
        let ret_expr = ret.map(|e| m.expr(e));
        let ret_pc = m.ctx.code.len() as u32;
        m.ctx.code.push(Instr::Ret { expr: ret_expr });
        let slot_names = m.slot_names.into_boxed_slice();
        let n_slots = slot_names.len() as u32;
        self.patch_all(&holes, ret_pc);
        CompiledMethod {
            entry,
            n_slots,
            slot_names,
            this_slot,
            params: param_slots,
        }
    }

    fn patch(&mut self, hole: Hole, target: u32) {
        let instr = &mut self.code[hole.pc as usize];
        let field = match (&mut *instr, hole.succ) {
            (Instr::Branch { then_pc, .. }, Succ::Then) => then_pc,
            (Instr::Branch { else_pc, .. }, Succ::Else) => else_pc,
            (Instr::LoopJunction { done, .. }, Succ::LoopDone) => done,
            (Instr::LoopJunction { body, .. }, Succ::Next) => body,
            (Instr::LoopEnter { head }, Succ::Next) => head,
            (Instr::Skip { next }, Succ::Next)
            | (Instr::Assign { next, .. }, Succ::Next)
            | (Instr::Rename { next, .. }, Succ::Next)
            | (Instr::Acquire { next, .. }, Succ::Next)
            | (Instr::Release { next, .. }, Succ::Next)
            | (Instr::New { next, .. }, Succ::Next)
            | (Instr::NewArray { next, .. }, Succ::Next)
            | (Instr::ReadField { next, .. }, Succ::Next)
            | (Instr::WriteField { next, .. }, Succ::Next)
            | (Instr::ReadArr { next, .. }, Succ::Next)
            | (Instr::WriteArr { next, .. }, Succ::Next)
            | (Instr::Call { next, .. }, Succ::Next)
            | (Instr::Fork { next, .. }, Succ::Next)
            | (Instr::Join { next, .. }, Succ::Next)
            | (Instr::Wait { next, .. }, Succ::Next)
            | (Instr::Notify { next, .. }, Succ::Next)
            | (Instr::Check { next, .. }, Succ::Next) => next,
            (i, s) => unreachable!("hole {s:?} does not match instruction {i:?}"),
        };
        *field = target;
    }

    fn patch_all(&mut self, holes: &[Hole], target: u32) {
        for &h in holes {
            self.patch(h, target);
        }
    }
}

/// Per-method lowering state: the slot map.
struct MethodLowerer<'c, 'p> {
    ctx: &'c mut Ctx<'p>,
    slots: HashMap<Sym, SlotId>,
    slot_names: Vec<Sym>,
}

const HOLE: u32 = u32::MAX;

impl MethodLowerer<'_, '_> {
    fn slot(&mut self, x: Sym) -> SlotId {
        if let Some(&s) = self.slots.get(&x) {
            return s;
        }
        let s = self.slot_names.len() as SlotId;
        self.slot_names.push(x);
        self.slots.insert(x, s);
        s
    }

    fn push_expr(&mut self, ce: CExpr) -> ExprId {
        let id = self.ctx.exprs.len() as ExprId;
        self.ctx.exprs.push(ce);
        id
    }

    fn operand(&mut self, e: &Expr) -> Option<Operand> {
        Some(match e {
            Expr::Int(n) => Operand::Const(Value::Int(*n)),
            Expr::Bool(b) => Operand::Const(Value::Bool(*b)),
            Expr::Null => Operand::Const(Value::Null),
            Expr::Var(x) => Operand::Slot(self.slot(*x)),
            _ => return None,
        })
    }

    fn expr(&mut self, e: &Expr) -> ExprId {
        let ce = match e {
            Expr::Int(n) => CExpr::Const(Value::Int(*n)),
            Expr::Bool(b) => CExpr::Const(Value::Bool(*b)),
            Expr::Null => CExpr::Const(Value::Null),
            Expr::Var(x) => CExpr::Slot(self.slot(*x)),
            Expr::Len(a) => CExpr::Len(self.slot(*a)),
            Expr::Unop(op, a) => match self.operand(a) {
                Some(a) => CExpr::Un { op: *op, a },
                None => self.flatten(e),
            },
            Expr::Binop(op, a, b) => match (self.operand(a), self.operand(b)) {
                (Some(a), Some(b)) => CExpr::Bin { op: *op, a, b },
                _ => self.flatten(e),
            },
        };
        self.push_expr(ce)
    }

    /// General fallback: postfix register ops, in the recursive
    /// evaluator's left-to-right order.
    fn flatten(&mut self, e: &Expr) -> CExpr {
        let mut ops = Vec::new();
        let out = self.flatten_into(e, &mut ops, 0);
        CExpr::Ops {
            ops: ops.into_boxed_slice(),
            out,
        }
    }

    fn flatten_into(&mut self, e: &Expr, ops: &mut Vec<EOp>, r: Reg) -> Reg {
        self.ctx.max_regs = self.ctx.max_regs.max(r + 2);
        match e {
            Expr::Int(n) => ops.push(EOp::Const {
                r,
                v: Value::Int(*n),
            }),
            Expr::Bool(b) => ops.push(EOp::Const {
                r,
                v: Value::Bool(*b),
            }),
            Expr::Null => ops.push(EOp::Const { r, v: Value::Null }),
            Expr::Var(x) => {
                let s = self.slot(*x);
                ops.push(EOp::Slot { r, s });
            }
            Expr::Len(a) => {
                let s = self.slot(*a);
                ops.push(EOp::Len { r, s });
            }
            Expr::Unop(op, a) => {
                self.flatten_into(a, ops, r);
                ops.push(EOp::Un { op: *op, r });
            }
            Expr::Binop(op, a, b) => {
                self.flatten_into(a, ops, r);
                self.flatten_into(b, ops, r + 1);
                ops.push(EOp::Bin {
                    op: *op,
                    a: r,
                    b: r + 1,
                });
            }
        }
        r
    }

    fn emit(&mut self, i: Instr) -> u32 {
        let pc = self.ctx.code.len() as u32;
        self.ctx.code.push(i);
        pc
    }

    fn lower_block(&mut self, b: &Block, mut pending: Vec<Hole>) -> Vec<Hole> {
        for s in &b.stmts {
            pending = self.lower_stmt(s, pending);
        }
        pending
    }

    /// Lowers one statement; `pending` holes are patched to its entry.
    /// Returns the holes dangling off its exit(s).
    fn lower_stmt(&mut self, s: &Stmt, pending: Vec<Hole>) -> Vec<Hole> {
        let instr = match &s.kind {
            StmtKind::Skip => Instr::Skip { next: HOLE },
            StmtKind::Assign { x, e } => {
                let e = self.expr(e);
                Instr::Assign {
                    dst: self.slot(*x),
                    e,
                    next: HOLE,
                }
            }
            StmtKind::Rename { fresh, old } => Instr::Rename {
                fresh: self.slot(*fresh),
                old: self.slot(*old),
                next: HOLE,
            },
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let cond = self.expr(cond);
                let bpc = self.emit(Instr::Branch {
                    cond,
                    then_pc: HOLE,
                    else_pc: HOLE,
                });
                self.ctx.patch_all(&pending, bpc);
                let mut holes = self.lower_arm(then_b, bpc, Succ::Then);
                holes.extend(self.lower_arm(else_b, bpc, Succ::Else));
                return holes;
            }
            StmtKind::Loop { head, exit, tail } => {
                let le = self.emit(Instr::LoopEnter { head: HOLE });
                self.ctx.patch_all(&pending, le);
                let tail_start = self.ctx.code.len() as u32;
                let tail_holes = self.lower_block(tail, Vec::new());
                let head_start = self.ctx.code.len() as u32;
                let head_holes = self.lower_block(head, Vec::new());
                let exit = self.expr(exit);
                let jpc = self.emit(Instr::LoopJunction {
                    exit,
                    body: HOLE,
                    done: HOLE,
                });
                let head_entry = if head_start < jpc { head_start } else { jpc };
                let tail_entry = if tail_start < head_start {
                    tail_start
                } else {
                    head_entry
                };
                self.ctx.patch(
                    Hole {
                        pc: le,
                        succ: Succ::Next,
                    },
                    head_entry,
                );
                self.ctx.patch_all(&tail_holes, head_entry);
                self.ctx.patch_all(&head_holes, jpc);
                self.ctx.patch(
                    Hole {
                        pc: jpc,
                        succ: Succ::Next,
                    },
                    tail_entry,
                );
                return vec![Hole {
                    pc: jpc,
                    succ: Succ::LoopDone,
                }];
            }
            StmtKind::Acquire { lock } => Instr::Acquire {
                lock: self.slot(*lock),
                next: HOLE,
            },
            StmtKind::Release { lock } => Instr::Release {
                lock: self.slot(*lock),
                next: HOLE,
            },
            StmtKind::New { x, class } => Instr::New {
                dst: self.slot(*x),
                class: self.ctx.index.class(*class).map(|ci| ci as u32),
                name: *class,
                next: HOLE,
            },
            StmtKind::NewArray { x, len } => {
                let len = self.expr(len);
                Instr::NewArray {
                    dst: self.slot(*x),
                    len,
                    next: HOLE,
                }
            }
            StmtKind::ReadField { x, obj, field } => Instr::ReadField {
                dst: self.slot(*x),
                obj: self.slot(*obj),
                site: self.ctx.field_site(*field),
                next: HOLE,
            },
            StmtKind::WriteField { obj, field, src } => Instr::WriteField {
                obj: self.slot(*obj),
                site: self.ctx.field_site(*field),
                src: self.slot(*src),
                next: HOLE,
            },
            StmtKind::ReadArr { x, arr, idx } => {
                let idx = self.expr(idx);
                Instr::ReadArr {
                    dst: self.slot(*x),
                    arr: self.slot(*arr),
                    idx,
                    next: HOLE,
                }
            }
            StmtKind::WriteArr { arr, idx, src } => {
                let idx = self.expr(idx);
                Instr::WriteArr {
                    arr: self.slot(*arr),
                    idx,
                    src: self.slot(*src),
                    next: HOLE,
                }
            }
            StmtKind::Call {
                x,
                recv,
                meth,
                args,
            } => {
                let site = self.call_site(*recv, *meth, args);
                Instr::Call {
                    dst: self.slot(*x),
                    site,
                    next: HOLE,
                }
            }
            StmtKind::Fork {
                x,
                recv,
                meth,
                args,
            } => {
                let site = self.call_site(*recv, *meth, args);
                Instr::Fork {
                    dst: self.slot(*x),
                    site,
                    next: HOLE,
                }
            }
            StmtKind::Join { t } => Instr::Join {
                t: self.slot(*t),
                next: HOLE,
            },
            StmtKind::Wait { lock } => Instr::Wait {
                lock: self.slot(*lock),
                next: HOLE,
            },
            StmtKind::Notify { lock } => Instr::Notify {
                lock: self.slot(*lock),
                next: HOLE,
            },
            StmtKind::Check { paths } => {
                let cpaths: Box<[CPath]> = paths
                    .iter()
                    .map(|cp| match &cp.path {
                        Path::Fields { base, fields } => CPath::Fields {
                            kind: cp.kind,
                            base: self.slot(*base),
                            fields: fields.iter().map(|f| self.ctx.field_site(*f)).collect(),
                        },
                        Path::Arr { base, range } => {
                            let base = self.slot(*base);
                            let lo = self.expr(&range.lo);
                            let hi = self.expr(&range.hi);
                            CPath::Arr {
                                kind: cp.kind,
                                base,
                                lo,
                                hi,
                                step: range.step,
                            }
                        }
                    })
                    .collect();
                let site = self.ctx.check_sites.len() as u32;
                self.ctx.check_sites.push(CheckSite { paths: cpaths });
                Instr::Check { site, next: HOLE }
            }
        };
        let pc = self.emit(instr);
        self.ctx.patch_all(&pending, pc);
        vec![Hole {
            pc,
            succ: Succ::Next,
        }]
    }

    /// Lowers one `if` arm; an empty arm leaves the branch's own hole
    /// dangling (zero extra steps, exactly like the interpreter pushing
    /// no statements).
    fn lower_arm(&mut self, b: &Block, bpc: u32, succ: Succ) -> Vec<Hole> {
        let start = self.ctx.code.len() as u32;
        let holes = self.lower_block(b, vec![Hole { pc: bpc, succ }]);
        debug_assert!(b.stmts.is_empty() || start < self.ctx.code.len() as u32);
        holes
    }

    fn call_site(&mut self, recv: Sym, meth: Sym, args: &[Sym]) -> u32 {
        let recv = self.slot(recv);
        let arg_slots: Box<[SlotId]> = args.iter().map(|a| self.slot(*a)).collect();
        let by_class: Box<[CallTarget]> = (0..self.ctx.program.classes.len())
            .map(|ci| match self.ctx.index.method(ci, meth) {
                Some(mi) => {
                    let mdef = &self.ctx.program.classes[ci].methods[mi];
                    if mdef.params.len() == args.len() {
                        CallTarget::Method(self.ctx.method_ids[&(ci, mi)])
                    } else {
                        CallTarget::Arity {
                            expected: mdef.params.len() as u32,
                        }
                    }
                }
                None => CallTarget::Unknown,
            })
            .collect();
        let id = self.ctx.call_sites.len() as u32;
        self.ctx.call_sites.push(CallSite {
            meth,
            recv,
            args: arg_slots,
            by_class,
        });
        id
    }
}
