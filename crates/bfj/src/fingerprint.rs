//! Stable structural fingerprints of BFJ method bodies.
//!
//! The incremental StaticBF layer keys its persistent placement cache by
//! *what the analysis consumes*: the structure of a method body, with
//! identifier [`Sym`]s folded in as their interned **strings** (interner
//! indices are process-local) and [`StmtId`]s excluded entirely (ids are
//! renumbered wholesale and never influence placement decisions). Two
//! bodies get the same fingerprint iff they are structurally identical up
//! to statement ids — exactly the equivalence the placement analysis
//! cannot distinguish.
//!
//! Digests use [`StableHasher`], never `FxHash` or `std`'s seeded
//! `RandomState`: these fingerprints escape the process as cache keys.
//! [`FINGERPRINT_VERSION`] must be bumped whenever the traversal or tag
//! assignment below changes.
//!
//! # Examples
//!
//! ```
//! use bigfoot_bfj::{fingerprint_method, parse_program};
//!
//! let p1 = parse_program("class C { meth m(x) { y = x + 1; return y; } } main { skip; }").unwrap();
//! let p2 = parse_program("class C { meth m(x) { y = x + 2; return y; } } main { skip; }").unwrap();
//! let m1 = &p1.classes[0].methods[0];
//! let m2 = &p2.classes[0].methods[0];
//! assert_ne!(fingerprint_method(m1), fingerprint_method(m2));
//! assert_eq!(fingerprint_method(m1), fingerprint_method(&m1.clone()));
//! ```

use crate::ast::{Block, CheckPath, Expr, MethodDef, Path, Range, Stmt, StmtKind, Unop};
use crate::Sym;
use bigfoot_obs::stable::{StableHasher, STABLE_HASH_VERSION};
use bigfoot_vc::AccessKind;

/// Version of the fingerprint traversal. Folded into every digest (along
/// with [`STABLE_HASH_VERSION`]) so any change to the byte mapping
/// invalidates previously persisted fingerprints instead of colliding
/// with them.
pub const FINGERPRINT_VERSION: u32 = 1;

fn sym(h: &mut StableHasher, s: Sym) {
    h.write_str(s.as_str());
}

fn syms(h: &mut StableHasher, ss: &[Sym]) {
    h.write_usize(ss.len());
    for &s in ss {
        sym(h, s);
    }
}

fn expr(h: &mut StableHasher, e: &Expr) {
    match e {
        Expr::Int(v) => {
            h.write_u8(0);
            h.write_i64(*v);
        }
        Expr::Bool(v) => {
            h.write_u8(1);
            h.write_bool(*v);
        }
        Expr::Null => h.write_u8(2),
        Expr::Var(x) => {
            h.write_u8(3);
            sym(h, *x);
        }
        Expr::Unop(op, e) => {
            h.write_u8(4);
            h.write_u8(match op {
                Unop::Neg => 0,
                Unop::Not => 1,
            });
            expr(h, e);
        }
        Expr::Binop(op, l, r) => {
            h.write_u8(5);
            // `Binop` is `#[repr]`-unspecified; map explicitly so the
            // digest cannot drift with declaration order.
            h.write_u8(binop_tag(*op));
            expr(h, l);
            expr(h, r);
        }
        Expr::Len(a) => {
            h.write_u8(6);
            sym(h, *a);
        }
    }
}

fn binop_tag(op: crate::ast::Binop) -> u8 {
    use crate::ast::Binop::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Mod => 4,
        Eq => 5,
        Ne => 6,
        Lt => 7,
        Le => 8,
        Gt => 9,
        Ge => 10,
        And => 11,
        Or => 12,
    }
}

fn range(h: &mut StableHasher, r: &Range) {
    expr(h, &r.lo);
    expr(h, &r.hi);
    h.write_i64(r.step);
}

fn path(h: &mut StableHasher, p: &Path) {
    match p {
        Path::Fields { base, fields } => {
            h.write_u8(0);
            sym(h, *base);
            syms(h, fields);
        }
        Path::Arr { base, range: r } => {
            h.write_u8(1);
            sym(h, *base);
            range(h, r);
        }
    }
}

fn check_path(h: &mut StableHasher, c: &CheckPath) {
    h.write_u8(match c.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    });
    path(h, &c.path);
}

fn stmt(h: &mut StableHasher, s: &Stmt) {
    // `s.id` is deliberately NOT hashed: ids are renumbered globally and
    // carry no placement-relevant content.
    match &s.kind {
        StmtKind::Skip => h.write_u8(0),
        StmtKind::Assign { x, e } => {
            h.write_u8(1);
            sym(h, *x);
            expr(h, e);
        }
        StmtKind::Rename { fresh, old } => {
            h.write_u8(2);
            sym(h, *fresh);
            sym(h, *old);
        }
        StmtKind::If {
            cond,
            then_b,
            else_b,
        } => {
            h.write_u8(3);
            expr(h, cond);
            block(h, then_b);
            block(h, else_b);
        }
        StmtKind::Loop { head, exit, tail } => {
            h.write_u8(4);
            block(h, head);
            expr(h, exit);
            block(h, tail);
        }
        StmtKind::Acquire { lock } => {
            h.write_u8(5);
            sym(h, *lock);
        }
        StmtKind::Release { lock } => {
            h.write_u8(6);
            sym(h, *lock);
        }
        StmtKind::New { x, class } => {
            h.write_u8(7);
            sym(h, *x);
            sym(h, *class);
        }
        StmtKind::NewArray { x, len } => {
            h.write_u8(8);
            sym(h, *x);
            expr(h, len);
        }
        StmtKind::ReadField { x, obj, field } => {
            h.write_u8(9);
            sym(h, *x);
            sym(h, *obj);
            sym(h, *field);
        }
        StmtKind::WriteField { obj, field, src } => {
            h.write_u8(10);
            sym(h, *obj);
            sym(h, *field);
            sym(h, *src);
        }
        StmtKind::ReadArr { x, arr, idx } => {
            h.write_u8(11);
            sym(h, *x);
            sym(h, *arr);
            expr(h, idx);
        }
        StmtKind::WriteArr { arr, idx, src } => {
            h.write_u8(12);
            sym(h, *arr);
            expr(h, idx);
            sym(h, *src);
        }
        StmtKind::Call {
            x,
            recv,
            meth,
            args,
        } => {
            h.write_u8(13);
            sym(h, *x);
            sym(h, *recv);
            sym(h, *meth);
            syms(h, args);
        }
        StmtKind::Fork {
            x,
            recv,
            meth,
            args,
        } => {
            h.write_u8(14);
            sym(h, *x);
            sym(h, *recv);
            sym(h, *meth);
            syms(h, args);
        }
        StmtKind::Join { t } => {
            h.write_u8(15);
            sym(h, *t);
        }
        StmtKind::Wait { lock } => {
            h.write_u8(16);
            sym(h, *lock);
        }
        StmtKind::Notify { lock } => {
            h.write_u8(17);
            sym(h, *lock);
        }
        StmtKind::Check { paths } => {
            h.write_u8(18);
            h.write_usize(paths.len());
            for c in paths {
                check_path(h, c);
            }
        }
    }
}

fn block(h: &mut StableHasher, b: &Block) {
    h.write_usize(b.stmts.len());
    for s in &b.stmts {
        stmt(h, s);
    }
}

fn seeded() -> StableHasher {
    let mut h = StableHasher::new();
    h.write_u32(STABLE_HASH_VERSION);
    h.write_u32(FINGERPRINT_VERSION);
    h
}

/// Stable structural fingerprint of a bare block (statement ids
/// excluded, identifiers hashed as strings).
pub fn fingerprint_block(b: &Block) -> u64 {
    let mut h = seeded();
    block(&mut h, b);
    h.finish()
}

/// Stable structural fingerprint of a method: name, parameters, body,
/// and return expression.
pub fn fingerprint_method(m: &MethodDef) -> u64 {
    let mut h = seeded();
    sym(&mut h, m.name);
    syms(&mut h, &m.params);
    block(&mut h, &m.body);
    expr(&mut h, &m.ret);
    h.finish()
}

/// Stable fingerprint of a parameter list plus body plus return — the
/// exact input the per-method placement analysis consumes (the name is
/// excluded so renames that cannot affect the method's own placement
/// hash identically; callers key entries by qualified name separately).
pub fn fingerprint_body(params: &[Sym], body: &Block, ret: &Expr) -> u64 {
    let mut h = seeded();
    syms(&mut h, params);
    block(&mut h, body);
    expr(&mut h, ret);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StmtId;
    use crate::parse_program;

    fn body_of(src: &str) -> MethodDef {
        parse_program(src).unwrap().classes[0].methods[0].clone()
    }

    #[test]
    fn stmt_ids_do_not_affect_fingerprint() {
        let m = body_of("class C { meth m(x) { y = x + 1; return y; } } main { skip; }");
        let mut renumbered = m.clone();
        for s in &mut renumbered.body.stmts {
            s.id = StmtId(s.id.0 + 1000);
        }
        assert_eq!(fingerprint_method(&m), fingerprint_method(&renumbered));
    }

    #[test]
    fn structural_change_changes_fingerprint() {
        let a = body_of("class C { meth m(x) { y = x + 1; return y; } } main { skip; }");
        let b = body_of("class C { meth m(x) { y = x - 1; return y; } } main { skip; }");
        assert_ne!(fingerprint_method(&a), fingerprint_method(&b));
    }

    #[test]
    fn identifier_rename_changes_fingerprint() {
        let a = body_of("class C { meth m(x) { y = x; return y; } } main { skip; }");
        let b = body_of("class C { meth m(x) { z = x; return z; } } main { skip; }");
        assert_ne!(fingerprint_method(&a), fingerprint_method(&b));
    }

    #[test]
    fn body_fingerprint_ignores_method_name() {
        let a = body_of("class C { meth m(x) { y = x; return y; } } main { skip; }");
        let b = body_of("class C { meth n(x) { y = x; return y; } } main { skip; }");
        assert_eq!(
            fingerprint_body(&a.params, &a.body, &a.ret),
            fingerprint_body(&b.params, &b.body, &b.ret)
        );
        assert_ne!(fingerprint_method(&a), fingerprint_method(&b));
    }

    #[test]
    fn adjacent_blocks_do_not_collide() {
        // `if (c) { skip; skip; } else { }` vs `if (c) { skip; } else { skip; }`
        let a = body_of("class C { meth m() { if (1 < 2) { skip; skip; } else { skip; } return 0; } } main { skip; }");
        let b = body_of("class C { meth m() { if (1 < 2) { skip; } else { skip; skip; } return 0; } } main { skip; }");
        assert_ne!(fingerprint_method(&a), fingerprint_method(&b));
    }
}
