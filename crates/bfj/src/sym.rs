//! Interned identifiers.
//!
//! BFJ programs, analysis facts, and interpreter environments all name
//! things (locals, fields, classes, methods) constantly; interning gives
//! them copyable `u32` identity with O(1) comparison and hashing.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned identifier (variable, field, class, or method name).
///
/// Two `Sym`s are equal iff they were interned from the same string. The
/// interner is global and append-only, so `Sym`s from different programs
/// can be compared freely.
///
/// # Examples
///
/// ```
/// use bigfoot_bfj::Sym;
///
/// let a = Sym::intern("x");
/// let b = Sym::intern("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Interns `s`, returning its symbol.
    pub fn intern(s: &str) -> Sym {
        let mut int = interner().lock().expect("interner poisoned");
        if let Some(&id) = int.map.get(s) {
            return Sym(id);
        }
        let id = int.strings.len() as u32;
        // Leaked strings live for the program's lifetime; identifier sets
        // are small and bounded by source text.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        int.map.insert(leaked, id);
        int.strings.push(leaked);
        Sym(id)
    }

    /// Interns a fresh symbol guaranteed not to collide with any source
    /// identifier, by embedding a counter: `base$n`.
    pub fn fresh(base: &str) -> Sym {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Sym::intern(&format!("{base}${n}"))
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("interner poisoned");
        int.strings[self.0 as usize]
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Sym::intern("foo"), Sym::intern("foo"));
        assert_ne!(Sym::intern("foo"), Sym::intern("bar"));
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Sym::fresh("t");
        let b = Sym::fresh("t");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("t$"));
    }

    #[test]
    fn display_roundtrip() {
        let s = Sym::intern("movePts");
        assert_eq!(format!("{s}"), "movePts");
    }
}
