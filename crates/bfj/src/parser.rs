//! Parser for BFJ surface syntax, with automatic lowering to A-normal form.
//!
//! Surface programs may use arbitrarily nested expressions (`a[i].f =
//! b.g + 1`); the parser extracts every heap read, allocation, and call
//! into a fresh temporary so that the resulting [`Program`] satisfies the
//! paper's A-normal-form requirements (§3.1). Pure arithmetic over locals
//! is left nested, since analysis paths and conditions may mention it.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use crate::Sym;
use bigfoot_vc::AccessKind;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete BFJ program and assigns statement ids.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors, including
/// programs without a `main` block.
///
/// # Examples
///
/// ```
/// let src = r#"
///     class Point {
///         field x; field y;
///         meth move(dx, dy) {
///             this.x = this.x + dx;
///             this.y = this.y + dy;
///             return 0;
///         }
///     }
///     main {
///         p = new Point;
///         r = p.move(1, 2);
///     }
/// "#;
/// let program = bigfoot_bfj::parse_program(src)?;
/// assert_eq!(program.classes.len(), 1);
/// # Ok::<(), bigfoot_bfj::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        msg: e.to_string(),
        line: e.line,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        tmp_counter: 0,
    };
    let mut program = p.program()?;
    program.renumber();
    Ok(program)
}

/// Parses a standalone *pure* expression (no heap reads, calls, or
/// allocations).
///
/// Used to reconstruct expressions from the entailment engine's opaque
/// atoms, whose canonical form is their rendering.
///
/// # Errors
///
/// Returns [`ParseError`] if the text is not a pure expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        msg: e.to_string(),
        line: e.line,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        tmp_counter: 0,
    };
    let e = p.expr()?;
    if p.peek() != &Token::Eof {
        return Err(p.err("trailing input after expression"));
    }
    let mut side = Vec::new();
    let pure = p.lower(e, &mut side)?;
    if side.is_empty() {
        Ok(pure)
    } else {
        Err(ParseError {
            msg: "expression must be pure (no heap reads or calls)".to_owned(),
            line: 1,
        })
    }
}

/// Surface expressions, before A-normal-form lowering.
#[derive(Debug, Clone)]
enum SExpr {
    Int(i64),
    Bool(bool),
    Null,
    Var(Sym),
    Unop(Unop, Box<SExpr>),
    Binop(Binop, Box<SExpr>, Box<SExpr>),
    FieldRead(Box<SExpr>, Sym),
    Len(Box<SExpr>),
    Index(Box<SExpr>, Box<SExpr>),
    Call(Box<SExpr>, Sym, Vec<SExpr>),
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    tmp_counter: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn eat_if(&mut self, want: &Token) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line(),
        }
    }

    fn ident(&mut self) -> Result<Sym, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(Sym::intern(&s))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn fresh_tmp(&mut self) -> Sym {
        let s = Sym::intern(&format!("t${}", self.tmp_counter));
        self.tmp_counter += 1;
        s
    }

    // ---------------- program structure ----------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut classes = Vec::new();
        let mut main = None;
        loop {
            match self.peek() {
                Token::Class => classes.push(self.class_def()?),
                Token::Main => {
                    self.bump();
                    let block = self.block()?;
                    if main.replace(block).is_some() {
                        return Err(self.err("duplicate `main` block"));
                    }
                }
                Token::Eof => break,
                other => return Err(self.err(format!("expected `class` or `main`, found {other}"))),
            }
        }
        let main = main.ok_or_else(|| self.err("program has no `main` block"))?;
        Ok(Program { classes, main })
    }

    fn class_def(&mut self) -> Result<ClassDef, ParseError> {
        self.eat(&Token::Class)?;
        let name = self.ident()?;
        self.eat(&Token::LBrace)?;
        let mut fields = Vec::new();
        let mut volatiles = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek() {
                Token::Field => {
                    self.bump();
                    fields.push(self.ident()?);
                    while self.eat_if(&Token::Comma) {
                        fields.push(self.ident()?);
                    }
                    self.eat(&Token::Semi)?;
                }
                Token::Volatile => {
                    self.bump();
                    // `volatile f;` declares the field and marks it.
                    let f = self.ident()?;
                    fields.push(f);
                    volatiles.push(f);
                    while self.eat_if(&Token::Comma) {
                        let f = self.ident()?;
                        fields.push(f);
                        volatiles.push(f);
                    }
                    self.eat(&Token::Semi)?;
                }
                Token::Meth => methods.push(self.method_def()?),
                Token::RBrace => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(self.err(format!(
                        "expected `field`, `meth`, or `}}` in class body, found {other}"
                    )))
                }
            }
        }
        Ok(ClassDef {
            name,
            fields,
            volatiles,
            methods,
        })
    }

    fn method_def(&mut self) -> Result<MethodDef, ParseError> {
        self.eat(&Token::Meth)?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Token::RParen {
            params.push(self.ident()?);
            while self.eat_if(&Token::Comma) {
                params.push(self.ident()?);
            }
        }
        self.eat(&Token::RParen)?;
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        let mut ret = Expr::Int(0);
        loop {
            match self.peek() {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Return => {
                    self.bump();
                    let e = self.expr()?;
                    self.eat(&Token::Semi)?;
                    let pure = self.lower(e, &mut stmts)?;
                    ret = if pure.is_atomic() {
                        pure
                    } else {
                        let t = self.fresh_tmp();
                        stmts.push(Stmt::new(StmtKind::Assign { x: t, e: pure }));
                        Expr::Var(t)
                    };
                    self.eat(&Token::RBrace)?;
                    break;
                }
                _ => self.stmt_into(&mut stmts)?,
            }
        }
        Ok(MethodDef {
            name,
            params,
            body: Block { stmts },
            ret,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::RBrace {
            if self.peek() == &Token::Eof {
                return Err(self.err("unterminated block"));
            }
            self.stmt_into(&mut stmts)?;
        }
        self.bump();
        Ok(Block { stmts })
    }

    // ---------------- statements ----------------

    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        match self.peek().clone() {
            Token::Skip => {
                self.bump();
                self.eat(&Token::Semi)?;
                out.push(Stmt::new(StmtKind::Skip));
            }
            Token::If => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                // Heap reads in the condition are lowered *before* the if.
                let cond = self.lower(cond, out)?;
                let then_b = self.block()?;
                let else_b = if self.eat_if(&Token::Else) {
                    self.block()?
                } else {
                    Block::new()
                };
                out.push(Stmt::new(StmtKind::If {
                    cond,
                    then_b,
                    else_b,
                }));
            }
            Token::While => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                // Loop rotation (as StaticBF's pre-pass, §5):
                //   while (c) b  ≡  <reads of c>;
                //                   if (c) { loop { b; <reads of c> } exit (!c) {} }
                // The do-while shape puts the body before the exit test, so
                // the analysis can anticipate the body's accesses at the
                // loop head.
                let guard = self.lower(cond.clone(), out)?;
                let mut head = body;
                let cond = self.lower(cond, &mut head.stmts)?;
                let loop_stmt = Stmt::new(StmtKind::Loop {
                    head,
                    exit: Expr::Unop(Unop::Not, Box::new(cond)),
                    tail: Block::new(),
                });
                out.push(Stmt::new(StmtKind::If {
                    cond: guard,
                    then_b: Block {
                        stmts: vec![loop_stmt],
                    },
                    else_b: Block::new(),
                }));
            }
            Token::For => {
                self.bump();
                self.eat(&Token::LParen)?;
                // for (x = init; cond; x = step) body — rotated like while.
                let var = self.ident()?;
                self.eat(&Token::Assign)?;
                let init = self.expr()?;
                self.eat(&Token::Semi)?;
                let cond = self.expr()?;
                self.eat(&Token::Semi)?;
                let upd_var = self.ident()?;
                self.eat(&Token::Assign)?;
                let upd = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                let init = self.lower(init, out)?;
                out.push(Stmt::new(StmtKind::Assign { x: var, e: init }));
                let guard = self.lower(cond.clone(), out)?;
                let mut head = body;
                let upd = self.lower(upd, &mut head.stmts)?;
                head.stmts
                    .push(Stmt::new(StmtKind::Assign { x: upd_var, e: upd }));
                let cond = self.lower(cond, &mut head.stmts)?;
                let loop_stmt = Stmt::new(StmtKind::Loop {
                    head,
                    exit: Expr::Unop(Unop::Not, Box::new(cond)),
                    tail: Block::new(),
                });
                out.push(Stmt::new(StmtKind::If {
                    cond: guard,
                    then_b: Block {
                        stmts: vec![loop_stmt],
                    },
                    else_b: Block::new(),
                }));
            }
            Token::Loop => {
                // Canonical mid-test loop: `loop { head } exit (e) { tail }`
                self.bump();
                let head = self.block()?;
                self.eat(&Token::Exit)?;
                self.eat(&Token::LParen)?;
                let exit = self.pure_expr()?;
                self.eat(&Token::RParen)?;
                let tail = self.block()?;
                out.push(Stmt::new(StmtKind::Loop { head, exit, tail }));
            }
            Token::Acq | Token::Rel | Token::Join | Token::Wait | Token::Notify => {
                let tok = self.bump();
                self.eat(&Token::LParen)?;
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                self.eat(&Token::Semi)?;
                let v = self.lower_to_var(e, out)?;
                out.push(Stmt::new(match tok {
                    Token::Acq => StmtKind::Acquire { lock: v },
                    Token::Rel => StmtKind::Release { lock: v },
                    Token::Wait => StmtKind::Wait { lock: v },
                    Token::Notify => StmtKind::Notify { lock: v },
                    _ => StmtKind::Join { t: v },
                }));
            }
            Token::Fork => {
                self.bump();
                let x = self.ident()?;
                self.eat(&Token::Assign)?;
                let recv = self.expr()?;
                // recv parses as a call: strip the outermost Call node.
                match recv {
                    SExpr::Call(obj, meth, args) => {
                        let recv = self.lower_to_var(*obj, out)?;
                        let mut arg_vars = Vec::new();
                        for a in args {
                            arg_vars.push(self.lower_to_var(a, out)?);
                        }
                        self.eat(&Token::Semi)?;
                        out.push(Stmt::new(StmtKind::Fork {
                            x,
                            recv,
                            meth,
                            args: arg_vars,
                        }));
                    }
                    _ => return Err(self.err("`fork` requires a method call `x = fork y.m(...)`")),
                }
            }
            Token::Check => {
                self.bump();
                self.eat(&Token::LParen)?;
                let mut paths = Vec::new();
                loop {
                    paths.push(self.check_path()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.eat(&Token::RParen)?;
                self.eat(&Token::Semi)?;
                out.push(Stmt::new(StmtKind::Check { paths }));
            }
            Token::Return => {
                return Err(self.err("`return` is only allowed at the end of a method body"));
            }
            _ => self.assignment_or_call(out)?,
        }
        Ok(())
    }

    /// Parses `check(...)` path syntax: `r: p.f`, `w: a[lo..hi:2]`,
    /// `w: p.x/y/z`.
    fn check_path(&mut self) -> Result<CheckPath, ParseError> {
        let kind_sym = self.ident()?;
        let kind = match kind_sym.as_str() {
            "r" => AccessKind::Read,
            "w" => AccessKind::Write,
            other => {
                return Err(self.err(format!(
                    "expected `r` or `w` in check path, found `{other}`"
                )))
            }
        };
        self.eat(&Token::Colon)?;
        let base = self.ident()?;
        match self.peek() {
            Token::Dot => {
                self.bump();
                let mut fields = vec![self.ident()?];
                while self.eat_if(&Token::Slash) {
                    fields.push(self.ident()?);
                }
                Ok(CheckPath {
                    kind,
                    path: Path::Fields { base, fields },
                })
            }
            Token::LBracket => {
                self.bump();
                let lo = self.pure_expr()?;
                let range = if self.eat_if(&Token::DotDot) {
                    let hi = self.pure_expr()?;
                    let step = if self.eat_if(&Token::Colon) {
                        match self.bump() {
                            Token::Int(n) if n > 0 => n,
                            other => {
                                return Err(
                                    self.err(format!("expected positive stride, found {other}"))
                                )
                            }
                        }
                    } else {
                        1
                    };
                    Range { lo, hi, step }
                } else {
                    Range::singleton(lo)
                };
                self.eat(&Token::RBracket)?;
                Ok(CheckPath {
                    kind,
                    path: Path::Arr { base, range },
                })
            }
            other => Err(self.err(format!("expected `.` or `[` in check path, found {other}"))),
        }
    }

    /// A pure expression: parsed then verified heap-free.
    fn pure_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr()?;
        let mut dummy = Vec::new();
        let pure = self.lower(e, &mut dummy)?;
        if dummy.is_empty() {
            Ok(pure)
        } else {
            Err(self.err("expression must be heap-free here"))
        }
    }

    fn assignment_or_call(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Renaming statement `x <- y;`
        if matches!(self.peek(), Token::Ident(_)) && self.peek2() == &Token::Arrow {
            let fresh = self.ident()?;
            self.bump(); // arrow
            let old = self.ident()?;
            self.eat(&Token::Semi)?;
            out.push(Stmt::new(StmtKind::Rename { fresh, old }));
            return Ok(());
        }
        let lhs = self.postfix()?;
        if self.eat_if(&Token::Assign) {
            match lhs {
                SExpr::Var(x) => self.rhs_into(x, out)?,
                SExpr::FieldRead(obj, field) => {
                    let obj = self.lower_to_var(*obj, out)?;
                    let src = self.rhs_value(out)?;
                    out.push(Stmt::new(StmtKind::WriteField { obj, field, src }));
                }
                SExpr::Index(arr, idx) => {
                    let arr = self.lower_to_var(*arr, out)?;
                    let idx = self.lower(*idx, out)?;
                    let src = self.rhs_value(out)?;
                    out.push(Stmt::new(StmtKind::WriteArr { arr, idx, src }));
                }
                _ => return Err(self.err("invalid assignment target")),
            }
            self.eat(&Token::Semi)?;
        } else {
            // Expression statement: must be a call (result discarded).
            match lhs {
                SExpr::Call(..) => {
                    let t = self.fresh_tmp();
                    let e = self.lower(lhs, out)?;
                    if !matches!(e, Expr::Var(_)) {
                        out.push(Stmt::new(StmtKind::Assign { x: t, e }));
                    }
                    self.eat(&Token::Semi)?;
                }
                _ => return Err(self.err("expected `=` or `(` after expression")),
            }
        }
        Ok(())
    }

    /// Parses a right-hand-side value (general expression or allocation)
    /// and lowers it into a variable.
    fn rhs_value(&mut self, out: &mut Vec<Stmt>) -> Result<Sym, ParseError> {
        match self.peek().clone() {
            Token::New => {
                self.bump();
                let class = self.ident()?;
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::New { x: t, class }));
                Ok(t)
            }
            Token::NewArray => {
                self.bump();
                self.eat(&Token::LParen)?;
                let len = self.expr()?;
                self.eat(&Token::RParen)?;
                let len = self.lower(len, out)?;
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::NewArray { x: t, len }));
                Ok(t)
            }
            _ => {
                let rhs = self.expr()?;
                self.lower_to_var(rhs, out)
            }
        }
    }

    /// Parses and lowers the right-hand side of `x = …;`, assigning the
    /// result directly into `x` when possible.
    fn rhs_into(&mut self, x: Sym, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        match self.peek().clone() {
            Token::New => {
                self.bump();
                let class = self.ident()?;
                out.push(Stmt::new(StmtKind::New { x, class }));
            }
            Token::NewArray => {
                self.bump();
                self.eat(&Token::LParen)?;
                let len = self.expr()?;
                self.eat(&Token::RParen)?;
                let len = self.lower(len, out)?;
                out.push(Stmt::new(StmtKind::NewArray { x, len }));
            }
            _ => {
                let e = self.expr()?;
                // Assign the outermost operation directly into x to avoid a
                // junk temporary.
                match e {
                    SExpr::FieldRead(obj, field) => {
                        let obj = self.lower_to_var(*obj, out)?;
                        out.push(Stmt::new(StmtKind::ReadField { x, obj, field }));
                    }
                    SExpr::Index(arr, idx) => {
                        let arr = self.lower_to_var(*arr, out)?;
                        let idx = self.lower(*idx, out)?;
                        out.push(Stmt::new(StmtKind::ReadArr { x, arr, idx }));
                    }
                    SExpr::Call(obj, meth, args) => {
                        let recv = self.lower_to_var(*obj, out)?;
                        let mut arg_vars = Vec::new();
                        for a in args {
                            arg_vars.push(self.lower_to_var(a, out)?);
                        }
                        out.push(Stmt::new(StmtKind::Call {
                            x,
                            recv,
                            meth,
                            args: arg_vars,
                        }));
                    }
                    other => {
                        let pure = self.lower(other, out)?;
                        out.push(Stmt::new(StmtKind::Assign { x, e: pure }));
                    }
                }
            }
        }
        Ok(())
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<SExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat_if(&Token::OrOr) {
            let rhs = self.and_expr()?;
            e = SExpr::Binop(Binop::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.cmp_expr()?;
        while self.eat_if(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            e = SExpr::Binop(Binop::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<SExpr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Token::EqEq => Binop::Eq,
            Token::NotEq => Binop::Ne,
            Token::Lt => Binop::Lt,
            Token::Le => Binop::Le,
            Token::Gt => Binop::Gt,
            Token::Ge => Binop::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(SExpr::Binop(op, Box::new(e), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => Binop::Add,
                Token::Minus => Binop::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = SExpr::Binop(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => Binop::Mul,
                Token::Slash => Binop::Div,
                Token::Percent => Binop::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = SExpr::Binop(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<SExpr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(SExpr::Unop(Unop::Neg, Box::new(e)))
            }
            Token::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(SExpr::Unop(Unop::Not, Box::new(e)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Token::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    if name.as_str() == "length" {
                        e = SExpr::Len(Box::new(e));
                    } else if self.peek() == &Token::LParen {
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek() != &Token::RParen {
                            args.push(self.expr()?);
                            while self.eat_if(&Token::Comma) {
                                args.push(self.expr()?);
                            }
                        }
                        self.eat(&Token::RParen)?;
                        e = SExpr::Call(Box::new(e), name, args);
                    } else {
                        e = SExpr::FieldRead(Box::new(e), name);
                    }
                }
                Token::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat(&Token::RBracket)?;
                    e = SExpr::Index(Box::new(e), Box::new(idx));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<SExpr, ParseError> {
        match self.bump() {
            Token::Int(n) => Ok(SExpr::Int(n)),
            Token::True => Ok(SExpr::Bool(true)),
            Token::False => Ok(SExpr::Bool(false)),
            Token::Null => Ok(SExpr::Null),
            Token::Ident(s) => Ok(SExpr::Var(Sym::intern(&s))),
            Token::LParen => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    // ---------------- A-normal-form lowering ----------------

    /// Lowers a surface expression: emits statements for impure parts and
    /// returns the residual pure expression.
    fn lower(&mut self, e: SExpr, out: &mut Vec<Stmt>) -> Result<Expr, ParseError> {
        Ok(match e {
            SExpr::Int(n) => Expr::Int(n),
            SExpr::Bool(b) => Expr::Bool(b),
            SExpr::Null => Expr::Null,
            SExpr::Var(x) => Expr::Var(x),
            SExpr::Unop(op, a) => {
                let a = self.lower(*a, out)?;
                // Fold negative literals so `-1` round-trips as `Int(-1)`.
                if let (Unop::Neg, Expr::Int(n)) = (op, &a) {
                    Expr::Int(-n)
                } else {
                    Expr::Unop(op, Box::new(a))
                }
            }
            SExpr::Binop(op, a, b) => {
                let a = self.lower(*a, out)?;
                let b = self.lower(*b, out)?;
                Expr::Binop(op, Box::new(a), Box::new(b))
            }
            SExpr::Len(a) => {
                let v = self.lower_to_var(*a, out)?;
                Expr::Len(v)
            }
            SExpr::FieldRead(obj, field) => {
                let obj = self.lower_to_var(*obj, out)?;
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::ReadField { x: t, obj, field }));
                Expr::Var(t)
            }
            SExpr::Index(arr, idx) => {
                let arr = self.lower_to_var(*arr, out)?;
                let idx = self.lower(*idx, out)?;
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::ReadArr { x: t, arr, idx }));
                Expr::Var(t)
            }
            SExpr::Call(obj, meth, args) => {
                let recv = self.lower_to_var(*obj, out)?;
                let mut arg_vars = Vec::new();
                for a in args {
                    arg_vars.push(self.lower_to_var(a, out)?);
                }
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::Call {
                    x: t,
                    recv,
                    meth,
                    args: arg_vars,
                }));
                Expr::Var(t)
            }
        })
    }

    /// Like [`Parser::lower`], but forces the result into a variable.
    fn lower_to_var(&mut self, e: SExpr, out: &mut Vec<Stmt>) -> Result<Sym, ParseError> {
        match self.lower(e, out)? {
            Expr::Var(x) => Ok(x),
            pure => {
                let t = self.fresh_tmp();
                out.push(Stmt::new(StmtKind::Assign { x: t, e: pure }));
                Ok(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).expect("parse failed")
    }

    #[test]
    fn parse_minimal_main() {
        let p = parse("main { skip; }");
        assert_eq!(p.main.stmts.len(), 1);
        assert_eq!(p.main.stmts[0].kind, StmtKind::Skip);
    }

    #[test]
    fn missing_main_is_error() {
        assert!(parse_program("class C { }").is_err());
    }

    #[test]
    fn non_positive_strides_are_rejected_with_a_diagnostic() {
        // A clamped `:0` stride would denote a different index set, so the
        // parser must refuse it outright (see SymRange::from_ast).
        for bad in ["0", "-1", "-3"] {
            let src = format!("main {{ a = new_array(8); check(r: a[0..8:{bad}]); }}");
            let err = parse_program(&src).expect_err("stride must be rejected");
            assert!(
                err.to_string().contains("positive stride"),
                "diagnostic should name the stride rule, got: {err}"
            );
        }
        // Positive strides still parse.
        assert!(parse_program("main { a = new_array(8); check(r: a[0..8:2]); }").is_ok());
    }

    #[test]
    fn rmw_lowering_produces_read_then_write() {
        let p = parse("class C { field f; } main { c = new C; c.f = c.f + 1; }");
        let kinds: Vec<_> = p.main.stmts.iter().map(|s| &s.kind).collect();
        assert!(matches!(kinds[0], StmtKind::New { .. }));
        assert!(matches!(kinds[1], StmtKind::ReadField { .. }));
        // rhs value lowered into a temp, then written
        assert!(matches!(kinds.last().unwrap(), StmtKind::WriteField { .. }));
    }

    /// Finds the (rotated) loop inside the `if` guard a `while`/`for`
    /// desugars into.
    fn guarded_loop(s: &Stmt) -> &Stmt {
        match &s.kind {
            StmtKind::If { then_b, .. } => then_b
                .stmts
                .iter()
                .find(|s| matches!(s.kind, StmtKind::Loop { .. }))
                .expect("loop inside rotation guard"),
            _ => panic!("expected rotation guard, got {:?}", s.kind),
        }
    }

    #[test]
    fn while_rotates_to_guarded_do_while() {
        let p = parse("main { i = 0; while (i < 10) { i = i + 1; } }");
        // i = 0; if (i < 10) { loop { i = i + 1 } exit (!(i < 10)) {} }
        match &guarded_loop(&p.main.stmts[1]).kind {
            StmtKind::Loop { head, exit, tail } => {
                assert_eq!(head.stmts.len(), 1);
                assert!(matches!(exit, Expr::Unop(Unop::Not, _)));
                assert!(tail.stmts.is_empty());
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn while_with_heap_condition_reads_twice() {
        let p = parse("class C { field f; } main { c = new C; while (c.f > 0) { c.f = 0; } }");
        // The guard read happens before the if; the loop re-reads at the
        // end of its head.
        assert!(matches!(p.main.stmts[1].kind, StmtKind::ReadField { .. }));
        match &guarded_loop(&p.main.stmts[2]).kind {
            StmtKind::Loop { head, .. } => {
                assert!(matches!(
                    head.stmts.last().unwrap().kind,
                    StmtKind::ReadField { .. }
                ));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_desugars() {
        let p = parse("main { a = new_array(10); for (i = 0; i < 10; i = i + 1) { a[i] = i; } }");
        assert!(matches!(p.main.stmts[1].kind, StmtKind::Assign { .. }));
        match &guarded_loop(&p.main.stmts[2]).kind {
            StmtKind::Loop { head, tail, .. } => {
                // body write + increment, all in the rotated head
                assert!(matches!(head.stmts[0].kind, StmtKind::WriteArr { .. }));
                assert!(matches!(
                    head.stmts.last().unwrap().kind,
                    StmtKind::Assign { .. }
                ));
                assert!(tail.stmts.is_empty());
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn fork_and_join() {
        let p = parse(
            "class W { meth run() { return 0; } } main { w = new W; fork t = w.run(); join(t); }",
        );
        assert!(matches!(p.main.stmts[1].kind, StmtKind::Fork { .. }));
        assert!(matches!(p.main.stmts[2].kind, StmtKind::Join { .. }));
    }

    #[test]
    fn nested_call_args_are_lowered() {
        let p = parse(
            "class C { field f; meth m(a, b) { return a; } }
             main { c = new C; r = c.m(c.f, 1 + 2); }",
        );
        let kinds: Vec<_> = p.main.stmts.iter().map(|s| &s.kind).collect();
        assert!(matches!(kinds[1], StmtKind::ReadField { .. }));
        assert!(matches!(kinds[2], StmtKind::Assign { .. }));
        assert!(matches!(kinds[3], StmtKind::Call { .. }));
    }

    #[test]
    fn check_statement_syntax() {
        let p = parse("main { p = null; a = null; check(w: p.x/y/z, r: a[0..10:2], r: a[5]); }");
        match &p.main.stmts[2].kind {
            StmtKind::Check { paths } => {
                assert_eq!(paths.len(), 3);
                assert_eq!(paths[0].kind, AccessKind::Write);
                match &paths[0].path {
                    Path::Fields { fields, .. } => assert_eq!(fields.len(), 3),
                    _ => panic!("expected field path"),
                }
                match &paths[1].path {
                    Path::Arr { range, .. } => assert_eq!(range.step, 2),
                    _ => panic!("expected array path"),
                }
            }
            other => panic!("expected check, got {other:?}"),
        }
    }

    #[test]
    fn rename_statement() {
        let p = parse("main { i = 0; i' <- i; }");
        assert!(matches!(p.main.stmts[1].kind, StmtKind::Rename { .. }));
    }

    #[test]
    fn array_of_objects_chain() {
        let p = parse("class P { field x; } main { a = new_array(3); v = a[0].x; }");
        let kinds: Vec<_> = p.main.stmts.iter().map(|s| &s.kind).collect();
        assert!(matches!(kinds[1], StmtKind::ReadArr { .. }));
        assert!(matches!(kinds[2], StmtKind::ReadField { .. }));
    }

    #[test]
    fn length_is_pure() {
        let p = parse("main { a = new_array(5); n = a.length; }");
        match &p.main.stmts[1].kind {
            StmtKind::Assign { e, .. } => assert!(matches!(e, Expr::Len(_))),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn return_not_in_main() {
        assert!(parse_program("main { return 0; }").is_err());
    }

    #[test]
    fn method_without_return_defaults_to_zero() {
        let p = parse("class C { meth m() { skip; } } main { skip; }");
        assert_eq!(p.classes[0].methods[0].ret, Expr::Int(0));
    }

    #[test]
    fn statement_level_call() {
        let p = parse("class C { meth m() { return 1; } } main { c = new C; c.m(); }");
        assert!(matches!(p.main.stmts[1].kind, StmtKind::Call { .. }));
    }
}
