//! Tokenizer for BFJ surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    Ident(String),
    Int(i64),
    // Keywords
    Class,
    Meth,
    Field,
    Main,
    Skip,
    If,
    Else,
    While,
    For,
    Acq,
    Rel,
    Join,
    Fork,
    Return,
    New,
    NewArray,
    True,
    False,
    Null,
    Check,
    Loop,
    Exit,
    Volatile,
    Wait,
    Notify,
    // Punctuation & operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Slash,
    Colon,
    DotDot,
    Assign,
    Arrow, // <- (the renaming operator)
    Plus,
    Minus,
    Star,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Token::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Int(n) => write!(f, "integer `{n}`"),
            Class => write!(f, "`class`"),
            Meth => write!(f, "`meth`"),
            Field => write!(f, "`field`"),
            Main => write!(f, "`main`"),
            Skip => write!(f, "`skip`"),
            If => write!(f, "`if`"),
            Else => write!(f, "`else`"),
            While => write!(f, "`while`"),
            For => write!(f, "`for`"),
            Acq => write!(f, "`acq`"),
            Rel => write!(f, "`rel`"),
            Join => write!(f, "`join`"),
            Fork => write!(f, "`fork`"),
            Return => write!(f, "`return`"),
            New => write!(f, "`new`"),
            NewArray => write!(f, "`new_array`"),
            True => write!(f, "`true`"),
            False => write!(f, "`false`"),
            Null => write!(f, "`null`"),
            Check => write!(f, "`check`"),
            Loop => write!(f, "`loop`"),
            Exit => write!(f, "`exit`"),
            Volatile => write!(f, "`volatile`"),
            Wait => write!(f, "`wait`"),
            Notify => write!(f, "`notify`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            Semi => write!(f, "`;`"),
            Comma => write!(f, "`,`"),
            Dot => write!(f, "`.`"),
            Slash => write!(f, "`/`"),
            Colon => write!(f, "`:`"),
            DotDot => write!(f, "`..`"),
            Assign => write!(f, "`=`"),
            Arrow => write!(f, "`<-`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Percent => write!(f, "`%`"),
            EqEq => write!(f, "`==`"),
            NotEq => write!(f, "`!=`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            AndAnd => write!(f, "`&&`"),
            OrOr => write!(f, "`||`"),
            Bang => write!(f, "`!`"),
            Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its 1-based source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub line: u32,
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` on line {}",
            self.ch, self.line
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes BFJ source text.
///
/// Comments run from `//` to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the language.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Spanned {
                        token: Token::Slash,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as i64))
                            .unwrap_or(i64::MAX);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Int(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '$' || d == '\'' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let token = match s.as_str() {
                    "class" => Token::Class,
                    "meth" => Token::Meth,
                    "field" => Token::Field,
                    "main" => Token::Main,
                    "skip" => Token::Skip,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "for" => Token::For,
                    "acq" => Token::Acq,
                    "rel" => Token::Rel,
                    "join" => Token::Join,
                    "fork" => Token::Fork,
                    "return" => Token::Return,
                    "new" => Token::New,
                    "new_array" => Token::NewArray,
                    "true" => Token::True,
                    "false" => Token::False,
                    "null" => Token::Null,
                    "check" => Token::Check,
                    "loop" => Token::Loop,
                    "exit" => Token::Exit,
                    "volatile" => Token::Volatile,
                    "wait" => Token::Wait,
                    "notify" => Token::Notify,
                    _ => Token::Ident(s),
                };
                out.push(Spanned { token, line });
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, want, a, b| {
                    if chars.peek() == Some(&want) {
                        chars.next();
                        a
                    } else {
                        b
                    }
                };
                let token = match c {
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ';' => Token::Semi,
                    ',' => Token::Comma,
                    ':' => Token::Colon,
                    '.' => two(&mut chars, '.', Token::DotDot, Token::Dot),
                    '=' => two(&mut chars, '=', Token::EqEq, Token::Assign),
                    '!' => two(&mut chars, '=', Token::NotEq, Token::Bang),
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::Le
                        } else if chars.peek() == Some(&'-') {
                            chars.next();
                            Token::Arrow
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => two(&mut chars, '=', Token::Ge, Token::Gt),
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '%' => Token::Percent,
                    '&' => {
                        if chars.peek() == Some(&'&') {
                            chars.next();
                            Token::AndAnd
                        } else {
                            return Err(LexError { ch: '&', line });
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            chars.next();
                            Token::OrOr
                        } else {
                            return Err(LexError { ch: '|', line });
                        }
                    }
                    other => return Err(LexError { ch: other, line }),
                };
                out.push(Spanned { token, line });
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lex_basic_tokens() {
        assert_eq!(
            toks("x = a[i] + 1;"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Plus,
                Token::Int(1),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_dotdot_vs_dot() {
        assert_eq!(
            toks("a[0..n]"),
            vec![
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Int(0),
                Token::DotDot,
                Token::Ident("n".into()),
                Token::RBracket,
                Token::Eof
            ]
        );
        assert_eq!(
            toks("a.f"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("f".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_comments_and_lines() {
        let t = tokenize("x = 1; // set x\ny = 2;").unwrap();
        assert_eq!(t[0].line, 1);
        let y = t
            .iter()
            .find(|s| s.token == Token::Ident("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn lex_arrow_and_comparisons() {
        assert_eq!(
            toks("i' <- i; a <= b; c < d;"),
            vec![
                Token::Ident("i'".into()),
                Token::Arrow,
                Token::Ident("i".into()),
                Token::Semi,
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Semi,
                Token::Ident("c".into()),
                Token::Lt,
                Token::Ident("d".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_error_reports_line() {
        let err = tokenize("x = 1;\n y = @;").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.line, 2);
    }

    #[test]
    fn lex_keywords() {
        assert_eq!(
            toks("fork t = w.run(); join(t);"),
            vec![
                Token::Fork,
                Token::Ident("t".into()),
                Token::Assign,
                Token::Ident("w".into()),
                Token::Dot,
                Token::Ident("run".into()),
                Token::LParen,
                Token::RParen,
                Token::Semi,
                Token::Join,
                Token::LParen,
                Token::Ident("t".into()),
                Token::RParen,
                Token::Semi,
                Token::Eof
            ]
        );
    }
}
