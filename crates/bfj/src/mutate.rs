//! Deterministic single-method program mutations.
//!
//! The incremental-analysis test harnesses (the mutation differential
//! suite, the `incremental` fuzz oracle, and the CI `incremental-smoke`
//! job) all need the same primitive: "edit exactly one method body" in a
//! way that is (a) a pure function of `(program, target, kind, salt)` so
//! shrinking and replay stay deterministic, and (b) classified by whether
//! the edit changes cross-method *facts* (kill-set effects, volatility)
//! or only the method's own body.
//!
//! Mutated programs are analyzed statically, never executed, so edits do
//! not need to be run-time meaningful (an `acq` on an unassigned local is
//! fine); they only need to be well-formed ASTs.

use crate::ast::{Block, Expr, Program, Stmt, StmtKind};
use crate::Sym;

/// The kinds of single-method edits the harnesses sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Append a heap-free assignment (`__mut = salt;`). Changes the body
    /// fingerprint but no kill-set effects: only the mutated method
    /// should be re-analyzed on a warm run.
    ArithTweak,
    /// Append a heap write (a field write when the enclosing class
    /// declares a field, otherwise a fresh array write). Flips the
    /// method's `writes_heap` effect, dirtying every transitive caller's
    /// fact fingerprint.
    AddFieldWrite,
    /// Append an `acq`/`rel` pair. Flips the method's `acquires` and
    /// `releases` effects — the strongest dependency-cone stressor,
    /// since lock effects feed both the forward and backward passes.
    AddLock,
}

impl MutationKind {
    /// All kinds, for sweeps.
    pub const ALL: [MutationKind; 3] = [
        MutationKind::ArithTweak,
        MutationKind::AddFieldWrite,
        MutationKind::AddLock,
    ];

    /// True if the edit can change cross-method facts (kill-set
    /// effects), i.e. callers of the mutated method may need
    /// re-analysis too.
    pub fn changes_facts(self) -> bool {
        !matches!(self, MutationKind::ArithTweak)
    }

    /// Stable name, used by CLI flags and test labels.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::ArithTweak => "arith",
            MutationKind::AddFieldWrite => "field-write",
            MutationKind::AddLock => "lock",
        }
    }

    /// Parses [`Self::name`].
    pub fn from_name(s: &str) -> Option<MutationKind> {
        MutationKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Number of mutation sites in `p`: every class method, plus `main`
/// (always the last site).
pub fn site_count(p: &Program) -> usize {
    p.classes.iter().map(|c| c.methods.len()).sum::<usize>() + 1
}

/// Applies `kind` to the `target`-th site (class methods in declaration
/// order, then `main`), appending statements derived from `salt`.
/// Returns the qualified name of the edited site (`"C.m"` or `"main"`),
/// or `None` if `target` is out of range. The program is renumbered
/// before returning so statement ids stay program-unique.
pub fn mutate(p: &mut Program, target: usize, kind: MutationKind, salt: i64) -> Option<String> {
    let sites = site_count(p);
    if target >= sites {
        return None;
    }
    let name;
    let class_field;
    let lock_var;
    {
        let (body, label, field, lock) = locate(p, target);
        name = label;
        class_field = field;
        lock_var = lock;
        append_edit(body, kind, salt, class_field, lock_var);
    }
    p.renumber();
    Some(name)
}

/// Resolves a site index to `(body, qualified-name, a declared
/// non-volatile field of the enclosing class if any, a lock variable)`.
fn locate(p: &mut Program, target: usize) -> (&mut Block, String, Option<(Sym, Sym)>, Sym) {
    let mut i = target;
    for ci in 0..p.classes.len() {
        let n = p.classes[ci].methods.len();
        if i < n {
            let class = &p.classes[ci];
            let label = format!("{}.{}", class.name.as_str(), class.methods[i].name.as_str());
            let field = class
                .fields
                .iter()
                .find(|f| !class.volatiles.contains(f))
                .map(|&f| (Sym::intern("this"), f));
            let lock = class.methods[i]
                .params
                .first()
                .copied()
                .unwrap_or_else(|| Sym::intern("this"));
            return (&mut p.classes[ci].methods[i].body, label, field, lock);
        }
        i -= n;
    }
    (&mut p.main, "main".to_string(), None, Sym::intern("__ml"))
}

fn append_edit(
    body: &mut Block,
    kind: MutationKind,
    salt: i64,
    class_field: Option<(Sym, Sym)>,
    lock_var: Sym,
) {
    let push = |body: &mut Block, k: StmtKind| body.stmts.push(Stmt::new(k));
    match kind {
        MutationKind::ArithTweak => {
            push(
                body,
                StmtKind::Assign {
                    x: Sym::intern("__mut"),
                    e: Expr::Int(salt),
                },
            );
        }
        MutationKind::AddFieldWrite => {
            let src = Sym::intern("__mv");
            push(
                body,
                StmtKind::Assign {
                    x: src,
                    e: Expr::Int(salt),
                },
            );
            match class_field {
                Some((obj, field)) => {
                    push(body, StmtKind::WriteField { obj, field, src });
                }
                None => {
                    // No declared field in scope: a fresh array write
                    // flips `writes_heap` just the same.
                    let arr = Sym::intern("__ma");
                    push(
                        body,
                        StmtKind::NewArray {
                            x: arr,
                            len: Expr::Int(1),
                        },
                    );
                    push(
                        body,
                        StmtKind::WriteArr {
                            arr,
                            idx: Expr::Int(0),
                            src,
                        },
                    );
                }
            }
        }
        MutationKind::AddLock => {
            push(body, StmtKind::Acquire { lock: lock_var });
            push(
                body,
                StmtKind::Assign {
                    x: Sym::intern("__mut"),
                    e: Expr::Int(salt),
                },
            );
            push(body, StmtKind::Release { lock: lock_var });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_method;
    use crate::parse_program;

    const SRC: &str =
        "class C { field f; meth m(x) { y = x; return y; } meth n() { skip; return 0; } } \
                       main { skip; }";

    #[test]
    fn site_count_includes_main() {
        let p = parse_program(SRC).unwrap();
        assert_eq!(site_count(&p), 3);
    }

    #[test]
    fn mutation_is_deterministic_and_single_method() {
        for kind in MutationKind::ALL {
            let mut a = parse_program(SRC).unwrap();
            let mut b = parse_program(SRC).unwrap();
            assert_eq!(mutate(&mut a, 0, kind, 7), Some("C.m".to_string()));
            assert_eq!(mutate(&mut b, 0, kind, 7), Some("C.m".to_string()));
            assert_eq!(a, b, "mutation must be deterministic ({kind:?})");
            let orig = parse_program(SRC).unwrap();
            assert_ne!(
                fingerprint_method(&a.classes[0].methods[0]),
                fingerprint_method(&orig.classes[0].methods[0]),
                "target body must change ({kind:?})"
            );
            assert_eq!(
                fingerprint_method(&a.classes[0].methods[1]),
                fingerprint_method(&orig.classes[0].methods[1]),
                "untouched bodies must not change ({kind:?})"
            );
        }
    }

    #[test]
    fn main_is_the_last_site() {
        let mut p = parse_program(SRC).unwrap();
        assert_eq!(
            mutate(&mut p, 2, MutationKind::ArithTweak, 1),
            Some("main".to_string())
        );
        assert_eq!(mutate(&mut p, 3, MutationKind::ArithTweak, 1), None);
    }

    #[test]
    fn ids_stay_program_unique_after_mutation() {
        let mut p = parse_program(SRC).unwrap();
        mutate(&mut p, 0, MutationKind::AddLock, 3);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        visit(&p.main, &mut seen, &mut count);
        for c in &p.classes {
            for m in &c.methods {
                visit(&m.body, &mut seen, &mut count);
            }
        }
        assert_eq!(seen.len(), count, "duplicate statement ids after mutate");
    }

    fn visit(b: &Block, seen: &mut std::collections::HashSet<u32>, count: &mut usize) {
        for s in &b.stmts {
            seen.insert(s.id.0);
            *count += 1;
            match &s.kind {
                StmtKind::If { then_b, else_b, .. } => {
                    visit(then_b, seen, count);
                    visit(else_b, seen, count);
                }
                StmtKind::Loop { head, tail, .. } => {
                    visit(head, seen, count);
                    visit(tail, seen, count);
                }
                _ => {}
            }
        }
    }
}
