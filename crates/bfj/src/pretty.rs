//! Pretty-printer for BFJ programs.
//!
//! Output is valid surface syntax: `parse_program(pretty(p))` reproduces
//! the same AST (modulo statement ids), which the test suite verifies by
//! round-tripping random programs.

use crate::ast::*;
use bigfoot_vc::AccessKind;
use std::fmt::Write;

/// Renders a whole program as parseable source text.
pub fn pretty(p: &Program) -> String {
    let mut out = String::new();
    for c in &p.classes {
        class(&mut out, c);
    }
    out.push_str("main {\n");
    block_body(&mut out, &p.main, 1);
    out.push_str("}\n");
    out
}

/// Renders a single statement (and any nested blocks) at indent 0.
pub fn pretty_stmt(s: &Stmt) -> String {
    let mut out = String::new();
    stmt(&mut out, s, 0);
    out
}

/// Renders an expression.
pub fn pretty_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(&mut out, e, 0);
    out
}

/// Renders a check path like `w: p.x/y/z` or `r: a[0..n:2]`.
pub fn pretty_check_path(cp: &CheckPath) -> String {
    let mut out = String::new();
    check_path(&mut out, cp);
    out
}

fn class(out: &mut String, c: &ClassDef) {
    let _ = writeln!(out, "class {} {{", c.name);
    for f in &c.fields {
        if c.volatiles.contains(f) {
            let _ = writeln!(out, "    volatile {f};");
        } else {
            let _ = writeln!(out, "    field {f};");
        }
    }
    for m in &c.methods {
        let _ = write!(out, "    meth {}(", m.name);
        for (i, p) in m.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{p}");
        }
        out.push_str(") {\n");
        block_body(out, &m.body, 2);
        let _ = writeln!(out, "        return {};", pretty_expr(&m.ret));
        out.push_str("    }\n");
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn block_body(out: &mut String, b: &Block, level: usize) {
    for s in &b.stmts {
        stmt(out, s, level);
    }
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::Skip => out.push_str("skip;\n"),
        StmtKind::Assign { x, e } => {
            let _ = writeln!(out, "{x} = {};", pretty_expr(e));
        }
        StmtKind::Rename { fresh, old } => {
            let _ = writeln!(out, "{fresh} <- {old};");
        }
        StmtKind::If {
            cond,
            then_b,
            else_b,
        } => {
            let _ = writeln!(out, "if ({}) {{", pretty_expr(cond));
            block_body(out, then_b, level + 1);
            if else_b.stmts.is_empty() {
                indent(out, level);
                out.push_str("}\n");
            } else {
                indent(out, level);
                out.push_str("} else {\n");
                block_body(out, else_b, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        StmtKind::Loop { head, exit, tail } => {
            // `while` sugar when the head is empty and the exit test is a
            // negation (exactly what the parser produces for `while`);
            // otherwise the canonical mid-test form.
            if head.stmts.is_empty() {
                if let Expr::Unop(Unop::Not, cond) = exit {
                    let _ = writeln!(out, "while ({}) {{", pretty_expr(cond));
                    block_body(out, tail, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                    return;
                }
            }
            out.push_str("loop {\n");
            block_body(out, head, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}} exit ({}) {{", pretty_expr(exit));
            block_body(out, tail, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Acquire { lock } => {
            let _ = writeln!(out, "acq({lock});");
        }
        StmtKind::Release { lock } => {
            let _ = writeln!(out, "rel({lock});");
        }
        StmtKind::New { x, class } => {
            let _ = writeln!(out, "{x} = new {class};");
        }
        StmtKind::NewArray { x, len } => {
            let _ = writeln!(out, "{x} = new_array({});", pretty_expr(len));
        }
        StmtKind::ReadField { x, obj, field } => {
            let _ = writeln!(out, "{x} = {obj}.{field};");
        }
        StmtKind::WriteField { obj, field, src } => {
            let _ = writeln!(out, "{obj}.{field} = {src};");
        }
        StmtKind::ReadArr { x, arr, idx } => {
            let _ = writeln!(out, "{x} = {arr}[{}];", pretty_expr(idx));
        }
        StmtKind::WriteArr { arr, idx, src } => {
            let _ = writeln!(out, "{arr}[{}] = {src};", pretty_expr(idx));
        }
        StmtKind::Call {
            x,
            recv,
            meth,
            args,
        } => {
            let _ = write!(out, "{x} = {recv}.{meth}(");
            args_list(out, args);
            out.push_str(");\n");
        }
        StmtKind::Fork {
            x,
            recv,
            meth,
            args,
        } => {
            let _ = write!(out, "fork {x} = {recv}.{meth}(");
            args_list(out, args);
            out.push_str(");\n");
        }
        StmtKind::Join { t } => {
            let _ = writeln!(out, "join({t});");
        }
        StmtKind::Wait { lock } => {
            let _ = writeln!(out, "wait({lock});");
        }
        StmtKind::Notify { lock } => {
            let _ = writeln!(out, "notify({lock});");
        }
        StmtKind::Check { paths } => {
            out.push_str("check(");
            for (i, cp) in paths.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                check_path(out, cp);
            }
            out.push_str(");\n");
        }
    }
}

fn args_list(out: &mut String, args: &[crate::Sym]) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{a}");
    }
}

fn check_path(out: &mut String, cp: &CheckPath) {
    out.push_str(match cp.kind {
        AccessKind::Read => "r: ",
        AccessKind::Write => "w: ",
    });
    match &cp.path {
        Path::Fields { base, fields } => {
            let _ = write!(out, "{base}.");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push('/');
                }
                let _ = write!(out, "{f}");
            }
        }
        Path::Arr { base, range } => {
            let _ = write!(out, "{base}[{}", pretty_expr(&range.lo));
            let singleton = matches!(
                (&range.hi, &range.lo),
                (Expr::Binop(Binop::Add, a, b), lo)
                    if a.as_ref() == lo && matches!(b.as_ref(), Expr::Int(1)) && range.step == 1
            );
            if !singleton {
                let _ = write!(out, "..{}", pretty_expr(&range.hi));
                if range.step != 1 {
                    let _ = write!(out, ":{}", range.step);
                }
            }
            out.push(']');
        }
    }
}

/// Operator precedence levels for minimal parenthesization.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) | Expr::Len(_) => 6,
        Expr::Unop(..) => 5,
        Expr::Binop(op, ..) => match op {
            Binop::Mul | Binop::Div | Binop::Mod => 4,
            Binop::Add | Binop::Sub => 3,
            Binop::Eq | Binop::Ne | Binop::Lt | Binop::Le | Binop::Gt | Binop::Ge => 2,
            Binop::And => 1,
            Binop::Or => 0,
        },
    }
}

fn expr(out: &mut String, e: &Expr, min_prec: u8) {
    let my = prec(e);
    let need_parens = my < min_prec;
    if need_parens {
        out.push('(');
    }
    match e {
        Expr::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Null => out.push_str("null"),
        Expr::Var(x) => {
            let _ = write!(out, "{x}");
        }
        Expr::Len(a) => {
            let _ = write!(out, "{a}.length");
        }
        Expr::Unop(op, a) => {
            out.push(match op {
                Unop::Neg => '-',
                Unop::Not => '!',
            });
            expr(out, a, 5);
        }
        Expr::Binop(op, a, b) => {
            let sym = match op {
                Binop::Add => "+",
                Binop::Sub => "-",
                Binop::Mul => "*",
                Binop::Div => "/",
                Binop::Mod => "%",
                Binop::Eq => "==",
                Binop::Ne => "!=",
                Binop::Lt => "<",
                Binop::Le => "<=",
                Binop::Gt => ">",
                Binop::Ge => ">=",
                Binop::And => "&&",
                Binop::Or => "||",
            };
            // Left-associative operators print the left child at their own
            // level; comparisons are non-associative in the grammar, so
            // both sides need parentheses when nested.
            let left_min = if op.is_comparison() { my + 1 } else { my };
            expr(out, a, left_min);
            let _ = write!(out, " {sym} ");
            expr(out, b, my + 1);
        }
    }
    if need_parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn roundtrip_simple_program() {
        let src = r#"
            class Point {
                field x; field y;
                meth move(dx) {
                    this.x = this.x + dx;
                    return 0;
                }
            }
            main {
                p = new Point;
                r = p.move(3);
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output:\n{printed}");
    }

    #[test]
    fn roundtrip_checks_and_loops() {
        let src = r#"
            main {
                a = new_array(10);
                for (i = 0; i < 10; i = i + 1) {
                    a[i] = i * 2;
                }
                check(r: a[0..10], w: a[0..10:2], r: a[3]);
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output:\n{printed}");
    }

    #[test]
    fn precedence_minimal_parens() {
        let e = Expr::Binop(
            Binop::Mul,
            Box::new(Expr::add(Expr::var("a"), Expr::var("b"))),
            Box::new(Expr::var("c")),
        );
        assert_eq!(pretty_expr(&e), "(a + b) * c");
        let e2 = Expr::add(
            Expr::Binop(
                Binop::Mul,
                Box::new(Expr::var("a")),
                Box::new(Expr::var("b")),
            ),
            Expr::var("c"),
        );
        assert_eq!(pretty_expr(&e2), "a * b + c");
    }

    #[test]
    fn sub_is_left_associative_in_print() {
        // (a - b) - c must not print as a - b - c ... it may, since that
        // re-parses identically; but a - (b - c) must keep its parens.
        let e = Expr::sub(Expr::var("a"), Expr::sub(Expr::var("b"), Expr::var("c")));
        assert_eq!(pretty_expr(&e), "a - (b - c)");
    }
}
