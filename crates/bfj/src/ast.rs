//! Abstract syntax for BFJ (BigFoot Java), the idealized language of the
//! paper's §3.1, extended with `fork`/`join`, arithmetic, and array lengths.
//!
//! Statements are in A-normal form: every heap access reads from or writes
//! to a local variable, and conditions are heap-free expressions over
//! locals. The parser performs this lowering automatically, so surface
//! programs may use arbitrary nested expressions.

use crate::Sym;
pub use bigfoot_vc::AccessKind;

/// A unique statement identifier within one [`Program`].
///
/// Ids are assigned by the parser and refreshed by
/// [`Program::renumber`]; the static analysis uses them to key per-point
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// A whole BFJ program: class definitions plus a `main` body.
///
/// Additional threads are created dynamically with `fork`, mirroring how
/// the paper's benchmarks spawn workers (the paper's static `s1‖…‖sn` form
/// is the special case of forking at the top of `main`).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All class definitions, in declaration order.
    pub classes: Vec<ClassDef>,
    /// The body of the initial thread.
    pub main: Block,
}

/// A class: a name, field names, and methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: Sym,
    /// Field names, in declaration order (field indices at run time).
    pub fields: Vec<Sym>,
    /// Names of fields declared `volatile` (a subset of `fields`).
    /// Volatile accesses synchronize (write = release-like, read =
    /// acquire-like) and are not themselves checked for races (§5).
    pub volatiles: Vec<Sym>,
    /// Methods, in declaration order.
    pub methods: Vec<MethodDef>,
}

/// A method: `m(x̄) { s; return z }`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Method name (resolution is by name within the receiver's class).
    pub name: Sym,
    /// Formal parameters. The receiver is bound to the implicit `this`.
    pub params: Vec<Sym>,
    /// Method body.
    pub body: Block,
    /// The returned expression (atomic after lowering).
    pub ret: Expr,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, executed in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A statement together with its program-unique id.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique id within the program (see [`Program::renumber`]).
    pub id: StmtId,
    /// The statement proper.
    pub kind: StmtKind,
}

impl Stmt {
    /// Wraps a [`StmtKind`] with a placeholder id; call
    /// [`Program::renumber`] before analysis.
    pub fn new(kind: StmtKind) -> Self {
        Stmt {
            id: StmtId(u32::MAX),
            kind,
        }
    }
}

/// BFJ statement forms (paper Fig. 5, plus `fork`/`join`).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `skip;`
    Skip,
    /// `x = e;` — heap-free assignment.
    Assign { x: Sym, e: Expr },
    /// `fresh ← old;` — the renaming operator of §3.3: copies `old` into
    /// the fresh variable so `old` can be reassigned without invalidating
    /// analysis history. Inserted by the instrumenter; a no-op at run time
    /// beyond the copy.
    Rename { fresh: Sym, old: Sym },
    /// `if (cond) { … } else { … }`
    If {
        cond: Expr,
        then_b: Block,
        else_b: Block,
    },
    /// `loop { head; if (exit) break; tail }` — the paper's mid-test loop.
    /// `while (c) body` parses into `loop { skip; if (!c) break; body }`
    /// (with any heap reads of `c` lowered into the head).
    Loop {
        head: Block,
        exit: Expr,
        tail: Block,
    },
    /// `acq(lock);` — acquire the monitor of the object in `lock`.
    Acquire { lock: Sym },
    /// `rel(lock);` — release the monitor of the object in `lock`.
    Release { lock: Sym },
    /// `x = new C;`
    New { x: Sym, class: Sym },
    /// `x = new_array e;` (length expression is heap-free).
    NewArray { x: Sym, len: Expr },
    /// `x = obj.field;`
    ReadField { x: Sym, obj: Sym, field: Sym },
    /// `obj.field = src;`
    WriteField { obj: Sym, field: Sym, src: Sym },
    /// `x = arr[idx];` (idx atomic after lowering).
    ReadArr { x: Sym, arr: Sym, idx: Expr },
    /// `arr[idx] = src;`
    WriteArr { arr: Sym, idx: Expr, src: Sym },
    /// `x = recv.meth(args);`
    Call {
        x: Sym,
        recv: Sym,
        meth: Sym,
        args: Vec<Sym>,
    },
    /// `x = fork recv.meth(args);` — spawn a thread running the call;
    /// `x` receives the thread handle. A release-like synchronization.
    Fork {
        x: Sym,
        recv: Sym,
        meth: Sym,
        args: Vec<Sym>,
    },
    /// `join(t);` — wait for the thread in `t`. An acquire-like
    /// synchronization.
    Join { t: Sym },
    /// `wait(lock);` — release the monitor, block until notified, then
    /// re-acquire (Java `Object.wait`). Both a release and an acquire.
    Wait { lock: Sym },
    /// `notify(lock);` — wake every thread waiting on the monitor (Java
    /// `Object.notifyAll`; the caller must hold the monitor).
    Notify { lock: Sym },
    /// `check(C);` — explicit race checks inserted by instrumentation.
    Check { paths: Vec<CheckPath> },
}

/// One element of a `check(C)` statement: a path plus read/write kind.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckPath {
    /// Read check or write check (§5's read/write distinction).
    pub kind: AccessKind,
    /// The heap locations checked.
    pub path: Path,
}

/// A heap path: an object-field group or a strided array range.
#[derive(Debug, Clone, PartialEq)]
pub enum Path {
    /// `base.f1/f2/…/fn` — one or more fields of the object in `base`
    /// (more than one after §4 field coalescing).
    Fields { base: Sym, fields: Vec<Sym> },
    /// `base[lo..hi:step]` — a strided index range of the array in `base`.
    Arr { base: Sym, range: Range },
}

impl Path {
    /// A single-field path `base.field`.
    pub fn field(base: Sym, field: Sym) -> Path {
        Path::Fields {
            base,
            fields: vec![field],
        }
    }

    /// A single-index path `base[idx]`.
    pub fn index(base: Sym, idx: Expr) -> Path {
        Path::Arr {
            base,
            range: Range::singleton(idx),
        }
    }

    /// The designator (base variable) of the path.
    pub fn base(&self) -> Sym {
        match self {
            Path::Fields { base, .. } | Path::Arr { base, .. } => *base,
        }
    }
}

/// A strided index range `lo..hi:step`, denoting
/// `{ lo + i·step | lo + i·step < hi, i ≥ 0 }`.
///
/// Bounds are (heap-free) expressions evaluated when the enclosing check
/// executes; the stride is a positive constant (every strided pattern in
/// the paper's evaluation uses constant strides).
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
    /// Positive constant stride.
    pub step: i64,
}

impl Range {
    /// The singleton range `idx..idx+1:1`.
    pub fn singleton(idx: Expr) -> Range {
        let hi = Expr::add(idx.clone(), Expr::Int(1));
        Range {
            lo: idx,
            hi,
            step: 1,
        }
    }

    /// The contiguous range `lo..hi:1`.
    pub fn contiguous(lo: Expr, hi: Expr) -> Range {
        Range { lo, hi, step: 1 }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl Binop {
    /// True for comparison operators producing booleans from ints or refs.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Binop::Eq | Binop::Ne | Binop::Lt | Binop::Le | Binop::Gt | Binop::Ge
        )
    }
}

/// Heap-free expressions over locals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
    /// A local variable.
    Var(Sym),
    /// Unary operation.
    Unop(Unop, Box<Expr>),
    /// Binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// `a.length` — array length; immutable, hence not a heap access for
    /// race purposes (as in Java, length is fixed at allocation).
    Len(Sym),
}

impl Expr {
    /// Convenience constructor for `a + b`.
    ///
    /// An associated constructor, not an operator impl: `Expr` is an AST
    /// node, and `Expr::add(x, y)` builds syntax rather than evaluating.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binop(Binop::Add, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binop(Binop::Sub, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(s: impl Into<Sym>) -> Expr {
        Expr::Var(s.into())
    }

    /// True for expressions that are already atomic operands in A-normal
    /// form (literals and variables).
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_)
        )
    }

    /// Collects the free variables of the expression into `out`.
    pub fn vars(&self, out: &mut Vec<Sym>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null => {}
            Expr::Var(x) | Expr::Len(x) => out.push(*x),
            Expr::Unop(_, e) => e.vars(out),
            Expr::Binop(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }

    /// True if variable `x` occurs free in the expression.
    pub fn mentions(&self, x: Sym) -> bool {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null => false,
            Expr::Var(y) | Expr::Len(y) => *y == x,
            Expr::Unop(_, e) => e.mentions(x),
            Expr::Binop(_, a, b) => a.mentions(x) || b.mentions(x),
        }
    }

    /// Substitutes expression `to` for variable `from`.
    pub fn subst(&self, from: Sym, to: &Expr) -> Expr {
        match self {
            Expr::Var(y) if *y == from => to.clone(),
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => self.clone(),
            Expr::Len(y) => {
                if *y == from {
                    match to {
                        Expr::Var(z) => Expr::Len(*z),
                        // `len` of a non-variable cannot be represented;
                        // callers treat such facts as killed.
                        _ => self.clone(),
                    }
                } else {
                    self.clone()
                }
            }
            Expr::Unop(op, e) => Expr::Unop(*op, Box::new(e.subst(from, to))),
            Expr::Binop(op, a, b) => Expr::Binop(
                *op,
                Box::new(a.subst(from, to)),
                Box::new(b.subst(from, to)),
            ),
        }
    }
}

impl Program {
    /// Reassigns contiguous [`StmtId`]s to every statement; returns the
    /// number of statements.
    pub fn renumber(&mut self) -> u32 {
        let mut next = 0u32;
        fn walk(b: &mut Block, next: &mut u32) {
            for s in &mut b.stmts {
                s.id = StmtId(*next);
                *next += 1;
                match &mut s.kind {
                    StmtKind::If { then_b, else_b, .. } => {
                        walk(then_b, next);
                        walk(else_b, next);
                    }
                    StmtKind::Loop { head, tail, .. } => {
                        walk(head, next);
                        walk(tail, next);
                    }
                    _ => {}
                }
            }
        }
        for c in &mut self.classes {
            for m in &mut c.methods {
                walk(&mut m.body, &mut next);
            }
        }
        walk(&mut self.main, &mut next);
        next
    }

    /// Looks up a class by name.
    pub fn class(&self, name: Sym) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Iterates over `(class, method)` pairs.
    pub fn methods(&self) -> impl Iterator<Item = (&ClassDef, &MethodDef)> {
        self.classes
            .iter()
            .flat_map(|c| c.methods.iter().map(move |m| (c, m)))
    }

    /// Total number of statements (after [`Program::renumber`] this equals
    /// the id bound).
    pub fn stmt_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.stmts
                .iter()
                .map(|s| {
                    1 + match &s.kind {
                        StmtKind::If { then_b, else_b, .. } => count(then_b) + count(else_b),
                        StmtKind::Loop { head, tail, .. } => count(head) + count(tail),
                        _ => 0,
                    }
                })
                .sum()
        }
        self.methods().map(|(_, m)| count(&m.body)).sum::<usize>() + count(&self.main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumber_assigns_unique_ids() {
        let mut p = Program {
            classes: vec![],
            main: Block {
                stmts: vec![
                    Stmt::new(StmtKind::Skip),
                    Stmt::new(StmtKind::If {
                        cond: Expr::Bool(true),
                        then_b: Block {
                            stmts: vec![Stmt::new(StmtKind::Skip)],
                        },
                        else_b: Block::new(),
                    }),
                ],
            },
        };
        let n = p.renumber();
        assert_eq!(n, 3);
        assert_eq!(p.main.stmts[0].id, StmtId(0));
        assert_eq!(p.main.stmts[1].id, StmtId(1));
    }

    #[test]
    fn expr_subst_and_mentions() {
        let x = Sym::intern("x");
        let y = Sym::intern("y");
        let e = Expr::add(Expr::Var(x), Expr::Int(1));
        assert!(e.mentions(x));
        assert!(!e.mentions(y));
        let e2 = e.subst(x, &Expr::Var(y));
        assert!(e2.mentions(y));
        assert!(!e2.mentions(x));
    }

    #[test]
    fn singleton_range_shape() {
        let i = Sym::intern("i");
        let r = Range::singleton(Expr::Var(i));
        assert_eq!(r.step, 1);
        assert_eq!(r.lo, Expr::Var(i));
    }
}
