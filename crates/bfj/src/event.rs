//! Run-time events observed by dynamic race detectors.
//!
//! The interpreter emits a totally-ordered stream of [`Event`]s to an
//! [`EventSink`]. This is the exact interface a RoadRunner-style dynamic
//! analysis sees: memory accesses, explicit race checks (from
//! instrumentation), and synchronization operations.

use bigfoot_vc::{AccessKind, Tid};

/// Identifier of a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// Identifier of a heap array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrId(pub u32);

impl std::fmt::Display for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl std::fmt::Display for ArrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A concrete memory location: an object field or an array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Loc {
    /// Field number `1` of object `0`.
    Field(ObjId, u32),
    /// Element `1` of array `0`.
    Elem(ArrId, i64),
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loc::Field(o, i) => write!(f, "{o}.f{i}"),
            Loc::Elem(a, i) => write!(f, "{a}[{i}]"),
        }
    }
}

/// A concrete strided index range `lo..hi:step` (step > 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConcreteRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
    /// Positive stride.
    pub step: i64,
}

impl ConcreteRange {
    /// The singleton range covering exactly `i`.
    pub fn singleton(i: i64) -> Self {
        ConcreteRange {
            lo: i,
            hi: i + 1,
            step: 1,
        }
    }

    /// The contiguous range `lo..hi`.
    pub fn contiguous(lo: i64, hi: i64) -> Self {
        ConcreteRange { lo, hi, step: 1 }
    }

    /// True if no index is covered.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Number of covered indices.
    pub fn len(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo + self.step - 1) / self.step
        }
    }

    /// True if index `i` is covered.
    pub fn contains(&self, i: i64) -> bool {
        i >= self.lo && i < self.hi && (i - self.lo) % self.step == 0
    }

    /// Iterates over covered indices in increasing order.
    #[inline]
    pub fn indices(&self) -> impl Iterator<Item = i64> + '_ {
        let (lo, hi, step) = (self.lo, self.hi, self.step);
        (lo..hi)
            .step_by(step.max(1) as usize)
            .filter(move |_| step > 0)
    }

    /// The largest covered index plus one, or `lo` when empty.
    pub fn last_plus_one(&self) -> i64 {
        if self.is_empty() {
            self.lo
        } else {
            self.lo + (self.len() - 1) * self.step + 1
        }
    }
}

impl std::fmt::Display for ConcreteRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.step == 1 {
            write!(f, "{}..{}", self.lo, self.hi)
        } else {
            write!(f, "{}..{}:{}", self.lo, self.hi, self.step)
        }
    }
}

/// One resolved path of a `check(C)` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckTarget {
    /// A (possibly coalesced) group of fields of one object.
    Fields(ObjId, Vec<u32>),
    /// A strided range of one array.
    Range(ArrId, ConcreteRange),
}

/// A dynamic event, in program execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An object allocation (detectors size their shadow state from this).
    AllocObj {
        t: Tid,
        obj: ObjId,
        /// Index of the class in `Program::classes`.
        class: u32,
        /// Number of fields.
        fields: u32,
    },
    /// An array allocation.
    AllocArr { t: Tid, arr: ArrId, len: u64 },
    /// A heap access (always emitted, whether or not instrumented).
    Access { t: Tid, kind: AccessKind, loc: Loc },
    /// An explicit race check from instrumentation. One event per executed
    /// `check(C)` statement; `paths` holds each coalesced path.
    Check {
        t: Tid,
        paths: Vec<(AccessKind, CheckTarget)>,
    },
    /// A read of a volatile field: acquire-like synchronization, not
    /// itself checked for races (§5).
    VolatileRead { t: Tid, obj: ObjId, field: u32 },
    /// A write of a volatile field: release-like synchronization.
    VolatileWrite { t: Tid, obj: ObjId, field: u32 },
    /// Lock acquire (after the lock is granted).
    Acquire { t: Tid, lock: ObjId },
    /// Lock release.
    Release { t: Tid, lock: ObjId },
    /// Thread `child` forked by `parent`.
    Fork { parent: Tid, child: Tid },
    /// `parent` joined on completed thread `child`.
    Join { parent: Tid, child: Tid },
    /// Thread finished executing.
    ThreadExit { t: Tid },
}

impl Event {
    /// The thread that performed this event.
    pub fn thread(&self) -> Tid {
        match self {
            Event::AllocObj { t, .. }
            | Event::AllocArr { t, .. }
            | Event::Access { t, .. }
            | Event::Check { t, .. }
            | Event::VolatileRead { t, .. }
            | Event::VolatileWrite { t, .. }
            | Event::Acquire { t, .. }
            | Event::Release { t, .. }
            | Event::ThreadExit { t } => *t,
            Event::Fork { parent, .. } | Event::Join { parent, .. } => *parent,
        }
    }

    /// True for synchronization operations (where deferred footprints
    /// commit).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Event::Acquire { .. }
                | Event::Release { .. }
                | Event::VolatileRead { .. }
                | Event::VolatileWrite { .. }
                | Event::Fork { .. }
                | Event::Join { .. }
                | Event::ThreadExit { .. }
        )
    }
}

/// Consumer of the interpreter's event stream.
///
/// Implemented by every dynamic race detector, by the trace recorder used
/// in tests, and by the precision verifier.
pub trait EventSink {
    /// Observes the next event in the global total order.
    fn event(&mut self, ev: &Event);
}

/// A sink that discards all events (used to measure base running time).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn event(&mut self, _ev: &Event) {}
}

/// A sink that records the full trace (used by tests and the verifier).
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The recorded events, in order.
    pub events: Vec<Event>,
}

impl EventSink for RecordingSink {
    fn event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, ev: &Event) {
        (**self).event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_membership_and_len() {
        let r = ConcreteRange {
            lo: 2,
            hi: 11,
            step: 3,
        };
        assert_eq!(r.len(), 3);
        assert!(r.contains(2));
        assert!(r.contains(5));
        assert!(r.contains(8));
        assert!(!r.contains(11));
        assert!(!r.contains(3));
        assert_eq!(r.indices().collect::<Vec<_>>(), vec![2, 5, 8]);
        assert_eq!(r.last_plus_one(), 9);
    }

    #[test]
    fn empty_range() {
        let r = ConcreteRange::contiguous(5, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.indices().count(), 0);
    }

    #[test]
    fn singleton_range() {
        let r = ConcreteRange::singleton(7);
        assert_eq!(r.len(), 1);
        assert!(r.contains(7));
        assert!(!r.contains(8));
    }

    #[test]
    fn event_thread_and_sync() {
        let ev = Event::Acquire {
            t: Tid(3),
            lock: ObjId(0),
        };
        assert_eq!(ev.thread(), Tid(3));
        assert!(ev.is_sync());
        let acc = Event::Access {
            t: Tid(1),
            kind: AccessKind::Read,
            loc: Loc::Elem(ArrId(0), 4),
        };
        assert!(!acc.is_sync());
    }
}
