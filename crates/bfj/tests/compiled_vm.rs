//! Differential tests: `CompiledVm` must be step-, event-, error-, and
//! env-identical to `Interp` for every program and scheduling policy.
//!
//! The compiled tier's contract is byte identity of the event stream —
//! these tests pin it at the source level (events, outcomes, errors,
//! final environments, step limits) across control flow, threading,
//! monitors, volatiles, checks, and every error path. The fuzz crate's
//! fifth oracle and `crates/bench/tests/compiled_differential.rs`
//! extend the same contract to generated programs and the full
//! benchmark suite via the BFTR codec.

use bigfoot_bfj::{
    compile, parse_program, CompiledVm, Interp, RecordingSink, RunOutcome, RuntimeError,
    SchedPolicy, Sym, Tid, TraceWriter, Value,
};

const POLICIES: [SchedPolicy; 4] = [
    SchedPolicy::RoundRobin { quantum: 1 },
    SchedPolicy::RoundRobin { quantum: 64 },
    SchedPolicy::Random {
        seed: 0xB16F_00D5 ^ 0xC0FFEE,
        switch_inv: 1,
    },
    SchedPolicy::Random {
        seed: 42,
        switch_inv: 3,
    },
];

fn run_interp(src: &str, policy: SchedPolicy) -> (Result<RunOutcome, RuntimeError>, Vec<u8>) {
    let p = parse_program(src).unwrap_or_else(|e| panic!("parse {e:?}:\n{src}"));
    let mut w = TraceWriter::new();
    let res = Interp::new(&p, policy)
        .with_max_steps(2_000_000)
        .run(&mut w);
    (res, w.into_bytes())
}

fn run_compiled(src: &str, policy: SchedPolicy) -> (Result<RunOutcome, RuntimeError>, Vec<u8>) {
    let p = parse_program(src).expect("parse");
    let cp = compile(&p);
    let mut w = TraceWriter::new();
    let res = CompiledVm::new(&cp, policy)
        .with_max_steps(2_000_000)
        .run(&mut w);
    (res, w.into_bytes())
}

#[track_caller]
fn assert_identical(src: &str) {
    for policy in POLICIES {
        let (ri, ti) = run_interp(src, policy);
        let (rc, tc) = run_compiled(src, policy);
        assert_eq!(ri, rc, "outcome diverges under {policy:?} for:\n{src}");
        assert_eq!(
            ti,
            tc,
            "trace bytes diverge under {policy:?} for:\n{src}\n\
             (interp {} bytes, compiled {} bytes)",
            ti.len(),
            tc.len()
        );
    }
}

#[test]
fn straight_line_arithmetic_and_control_flow() {
    assert_identical("main { }");
    assert_identical("main { skip; }");
    assert_identical("main { x = 1 + 2 * 3 - 4 / 2 % 3; y = -x; z = !(x < y); }");
    assert_identical("main { x = 3; if (x > 2) { y = 1; } else { y = 2; } }");
    assert_identical("main { x = 0; if (x > 2) { y = 1; } }");
    assert_identical("main { if (true) { } else { x = 1; } }");
    assert_identical("main { i = 0; s = 0; while (i < 10) { s = s + i; i = i + 1; } }");
    assert_identical(
        "main { i = 0; while (i < 3) { j = 0; while (j < 3) { j = j + 1; } i = i + 1; } }",
    );
    assert_identical("main { x = 1 == 1; y = 1 == true; z = null == null; w = x && !y || z; }");
}

#[test]
fn heap_objects_arrays_and_volatiles() {
    assert_identical(
        "class P { field x; field y; volatile v; }
         main {
             p = new P;
             p.x = 1; p.y = 2; p.v = 3;
             a = p.x; b = p.v;
             arr = new_array(5);
             i = 0;
             while (i < arr.length) { arr[i] = i * i; i = i + 1; }
             s = arr[4];
             n = arr.length;
         }",
    );
    // Volatility is resolved by field *name*, program-wide.
    assert_identical(
        "class A { volatile f; }
         class B { field f; }
         main { a = new A; b = new B; a.f = 1; b.f = 2; x = a.f; y = b.f; }",
    );
}

#[test]
fn methods_calls_and_returns() {
    assert_identical(
        "class Counter {
             field n;
             meth bump(k) { this.n = this.n + k; return this.n; }
             meth zero() { return 0; }
         }
         main {
             c = new Counter;
             c.n = 0;
             i = 0;
             while (i < 5) { v = c.bump(i); i = i + 1; }
             z = c.zero();
         }",
    );
    // Dynamic dispatch on the run-time class.
    assert_identical(
        "class A { meth id() { return 1; } }
         class B { meth id() { return 2; } }
         main { a = new A; b = new B; x = a.id(); y = b.id(); }",
    );
    // Recursion.
    assert_identical(
        "class F {
             meth fib(n) {
                 r = 0;
                 if (n < 2) { r = n; } else {
                     a = this.fib(n - 1);
                     b = this.fib(n - 2);
                     r = a + b;
                 }
                 return r;
             }
         }
         main { f = new F; x = f.fib(10); }",
    );
}

#[test]
fn threads_locks_wait_notify() {
    assert_identical(
        "class W { field done; meth run(l) { acq(l); this.done = 1; rel(l); return 0; } }
         main {
             l = new W;
             w = new W;
             fork t1 = w.run(l);
             fork t2 = w.run(l);
             join(t1); join(t2);
             acq(l); d = w.done; rel(l);
         }",
    );
    // Reentrant locking.
    assert_identical(
        "class L { meth m(l) { acq(l); acq(l); rel(l); rel(l); return 0; } }
         main { l = new L; o = new L; fork t = o.m(l); acq(l); rel(l); join(t); }",
    );
    // wait/notify hand-off: consumer waits until the producer flips the flag.
    assert_identical(
        "class Cell {
             field full;
             meth put(l) {
                 acq(l);
                 this.full = 1;
                 notify(l);
                 rel(l);
                 return 0;
             }
             meth take(l) {
                 acq(l);
                 f = this.full;
                 while (f == 0) { wait(l); f = this.full; }
                 rel(l);
                 return f;
             }
         }
         main {
             l = new Cell; c = new Cell;
             c.full = 0;
             fork t = c.take(l);
             fork u = c.put(l);
             join(t); join(u);
         }",
    );
}

#[test]
fn checks_compile_to_direct_sink_calls() {
    assert_identical(
        "class P { field x; field y; }
         main {
             p = new P; a = new_array(10);
             check(w: p.x/y, r: a[0..10:2], r: a[3]);
             p.x = 1; p.y = 2; a[3] = 4;
             lo = 2; hi = 8;
             check(r: a[lo..hi:1]);
         }",
    );
}

#[test]
fn renames_default_to_zero_before_first_assignment() {
    assert_identical("main { y <- x; x = 1; z <- x; }");
}

/// Every runtime error must surface identically (same variant, same
/// message, same event prefix) at the same step.
#[test]
fn error_paths_are_identical() {
    for src in [
        "main { x = 1 / 0; }",
        "main { x = 5 % 0; }",
        "main { x = y + 1; }",
        "main { x = 1 + true; }",
        "main { x = !3; }",
        "main { x = true < false; }",
        "main { a = new_array(3); x = a[3]; }",
        "main { a = new_array(3); x = a[0 - 1]; }",
        "main { a = new_array(3); y = 7; a[y] = y; }",
        "main { a = new_array(0 - 2); }",
        "main { x = new Nope; }",
        "class A { } main { a = new A; a.f = 1; }",
        "class A { } main { a = new A; x = a.f; }",
        "class A { } main { a = new A; x = a.m(); }",
        "class A { meth m(p) { return p; } } main { a = new A; x = a.m(); }",
        "main { x = 3; acq(x); }",
        "main { x = 3; x.f = 1; }",
        "main { x = 3; y = x[0]; }",
        "main { x = 3; n = x.length; }",
        "main { x = 3; join(x); }",
        "main { l = new_array(1); rel(l); }",
        "class L { } main { l = new L; rel(l); }",
        "class L { } main { l = new L; notify(l); }",
        "class L { } main { l = new L; wait(l); }",
        // Self-deadlock: main waits with nobody to notify.
        "class L { } main { l = new L; acq(l); wait(l); }",
        // Check paths can fail resolution too.
        "class P { field x; } main { p = new P; check(r: p.x/y); }",
        "main { check(r: p.x); }",
        "main { a = new_array(4); check(r: a[z..4:1]); }",
    ] {
        assert_identical(src);
    }
}

#[test]
fn step_limit_hits_at_the_same_step() {
    let src = "main { i = 0; while (i >= 0) { i = i + 1; } }";
    let p = parse_program(src).expect("parse");
    let cp = compile(&p);
    for limit in [1u64, 7, 100, 12345] {
        let mut ri = RecordingSink::default();
        let ei = Interp::new(&p, SchedPolicy::default())
            .with_max_steps(limit)
            .run(&mut ri);
        let mut rc = RecordingSink::default();
        let ec = CompiledVm::new(&cp, SchedPolicy::default())
            .with_max_steps(limit)
            .run(&mut rc);
        assert_eq!(ei, ec, "limit {limit}");
        assert_eq!(ri.events, rc.events, "limit {limit}");
        assert_eq!(ei.unwrap_err(), RuntimeError::StepLimitExceeded(limit));
    }
}

#[test]
fn final_env_and_heap_match_the_interpreter() {
    let src = "class C { field n; meth set(v) { this.n = v; return v * 2; } }
               main { c = new C; x = c.set(21); a = new_array(2); a[1] = x; y <- x; }";
    let p = parse_program(src).expect("parse");
    let cp = compile(&p);
    let mut interp = Interp::new(&p, SchedPolicy::default());
    interp.run(&mut RecordingSink::default()).expect("interp");
    let mut vm = CompiledVm::new(&cp, SchedPolicy::default());
    vm.run(&mut RecordingSink::default()).expect("vm");
    let ie = interp.final_env(Tid(0)).expect("interp env");
    let ve = vm.final_env(Tid(0)).expect("vm env");
    assert_eq!(ie, ve);
    assert_eq!(ve[&Sym::intern("x")], Value::Int(42));
    assert_eq!(interp.heap().cells(), vm.heap().cells());
    assert_eq!(
        interp.heap().array(bigfoot_bfj::ArrId(0)).data,
        vm.heap().array(bigfoot_bfj::ArrId(0)).data
    );
}

/// A bigger composite program under every policy, to shake out
/// scheduler-coupling bugs (quantum boundaries, RNG draw ordering).
#[test]
fn composite_workload_is_identical_under_all_policies() {
    assert_identical(
        "class Worker {
             field sum;
             volatile flag;
             meth work(l, a, lo, hi) {
                 i = lo;
                 while (i < hi) {
                     v = a[i];
                     acq(l);
                     s = this.sum;
                     this.sum = s + v;
                     rel(l);
                     i = i + 1;
                 }
                 this.flag = 1;
                 return this.sum;
             }
         }
         main {
             l = new Worker; w = new Worker;
             w.sum = 0;
             a = new_array(40);
             i = 0;
             while (i < 40) { a[i] = i; i = i + 1; }
             fork t1 = w.work(l, a, 0, 20);
             fork t2 = w.work(l, a, 20, 40);
             f = w.flag;
             join(t1);
             join(t2);
             acq(l); total = w.sum; rel(l);
         }",
    );
}
