//! BFTR decode hardening: untrusted trace bytes must always produce a
//! typed [`TraceError`] or a clean end — never a panic, a hang, or an
//! attacker-chosen allocation.
//!
//! The recorded trace below covers every tag the writer can emit
//! (allocations, field/array accesses, checks with field sets *and*
//! strided ranges, volatiles, lock acquire/release, fork/join, thread
//! exit), then gets systematically damaged: truncated at every byte
//! boundary, mutated at every byte position, and spliced with
//! hand-crafted corrupt payloads (oversized LEB128 varints, unknown
//! tags, absurd claimed lengths).

use bigfoot_bfj::trace::{read_event, read_header};
use bigfoot_bfj::{parse_program, Interp, SchedPolicy, TraceError, TraceWriter, TRACE_MAGIC};

/// Records one run that exercises every event tag in the codec.
fn recorded_trace() -> Vec<u8> {
    let p = parse_program(
        "class C {
             field x; field y; volatile v;
             meth poke(l) {
                 acq(l);
                 this.x = 1;
                 this.v = 2;
                 w = this.v;
                 rel(l);
                 return w;
             }
         }
         main {
             c = new C; l = new C;
             a = new_array(8);
             check(w: c.x/y, r: a[0..8:2], r: a[3]);
             a[3] = 5;
             z = a[3];
             fork t = c.poke(l);
             join(t);
         }",
    )
    .expect("parse");
    let mut w = TraceWriter::new();
    Interp::new(&p, SchedPolicy::default())
        .run(&mut w)
        .expect("run");
    w.into_bytes()
}

/// Decodes every event in `bytes`, returning how many decoded before a
/// clean end (`Ok`) or a typed error (`Err`). Panics and hangs are the
/// failures this harness exists to rule out.
fn decode_all(bytes: &[u8]) -> Result<usize, TraceError> {
    let mut pos = read_header(bytes)?;
    let mut n = 0;
    while read_event(bytes, &mut pos)?.is_some() {
        n += 1;
    }
    Ok(n)
}

#[test]
fn intact_trace_decodes_completely() {
    let bytes = recorded_trace();
    let n = decode_all(&bytes).expect("intact trace");
    assert!(n > 10, "expected a rich trace, decoded only {n} events");
}

#[test]
fn every_truncation_errors_or_ends_cleanly() {
    let bytes = recorded_trace();
    for len in 0..bytes.len() {
        match decode_all(&bytes[..len]) {
            // A cut between events is indistinguishable from a shorter
            // trace — that is a clean end, not corruption.
            Ok(_) => {}
            Err(
                TraceError::BadMagic
                | TraceError::UnsupportedVersion(_)
                | TraceError::Truncated { .. }
                | TraceError::BadTag { .. }
                | TraceError::InvalidStride { .. },
            ) => {}
            // Container-level errors belong to the BFTC decoder; the
            // raw event codec must never produce them.
            Err(e) => panic!("raw decode produced a container error: {e:?}"),
        }
    }
}

#[test]
fn every_single_byte_mutation_decodes_or_errors() {
    let bytes = recorded_trace();
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            // Either outcome is fine; what must not happen is a panic,
            // an unbounded loop, or an unbounded allocation.
            let _ = decode_all(&bad);
        }
    }
}

/// Mutated bytes that still decode must survive the codec round-trip:
/// re-encoding the decoded events yields a trace that decodes to the
/// same events again. This is the fuzz crate's round-trip oracle applied
/// to byte-level damage instead of generated programs.
#[test]
fn mutations_that_still_decode_round_trip() {
    use bigfoot_bfj::{Event, EventSink};
    let bytes = recorded_trace();
    let decode_events = |bytes: &[u8]| -> Result<Vec<Event>, TraceError> {
        let mut pos = read_header(bytes)?;
        let mut evs = Vec::new();
        while let Some(ev) = read_event(bytes, &mut pos)? {
            evs.push(ev);
        }
        Ok(evs)
    };
    let mut survivors = 0;
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        let Ok(evs) = decode_events(&bad) else {
            continue;
        };
        survivors += 1;
        let mut w = TraceWriter::new();
        for ev in &evs {
            w.event(ev);
        }
        let reencoded = w.into_bytes();
        assert_eq!(
            decode_events(&reencoded).expect("re-encoded trace must decode"),
            evs,
            "round-trip diverged after mutating byte {pos}"
        );
    }
    assert!(survivors > 0, "no mutation survived — test lost its teeth");
}

#[test]
fn oversized_leb128_shift_is_a_typed_error() {
    // TAG_ALLOC_ARR = 1: tid, arr, then a u64 length whose varint never
    // terminates — eleven continuation bytes push the shift past 63.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(1); // TAG_ALLOC_ARR
    bytes.push(0); // tid
    bytes.push(0); // arr id
    bytes.extend_from_slice(&[0xff; 11]);
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn unknown_tags_are_typed_errors() {
    for tag in [11u8, 0x42, 0xff] {
        let mut bytes = TRACE_MAGIC.to_vec();
        bytes.push(1); // version
        bytes.push(tag);
        assert!(
            matches!(decode_all(&bytes), Err(TraceError::BadTag { tag: t, .. }) if t == tag),
            "tag {tag} must be rejected"
        );
    }
}

#[test]
fn absurd_check_path_count_errors_without_matching_allocation() {
    // TAG_CHECK = 3 claiming u64::MAX paths, then nothing. The decoder
    // must cap its pre-allocation at the (tiny) remaining input and fail
    // with `Truncated` — not reserve entries for the claimed length.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));

    // Same for the field-index count inside one path: one claimed path,
    // a Fields target with u64::MAX indices, then nothing.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.push(1); // one path
    bytes.push(0); // kind = read
    bytes.push(0); // subtag = Fields
    bytes.push(7); // obj id
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    assert!(matches!(decode_all(b"NOPE"), Err(TraceError::BadMagic)));
    assert!(matches!(decode_all(b""), Err(TraceError::BadMagic)));
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(99);
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::UnsupportedVersion(99))
    ));
}

// ---------------- compressed (`BFTC`) container hardening ----------------
//
// The grammar-compressed container adds untrusted structure on top of the
// event codec: a rule table whose symbol references, repeat counts,
// claimed expansion size, and nesting depth are all attacker-controlled.
// Each gets a typed error — never a panic, hang, cycle, or unbounded
// allocation.

mod compressed {
    use super::{decode_all, recorded_trace, TraceError};
    use bigfoot_bfj::{compress, decompress, read_compressed, COMPRESSED_MAGIC};

    /// LEB128 varint, matching the codec's unsigned encoding.
    fn vu64(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(b);
                break;
            }
            buf.push(b | 0x80);
        }
    }

    /// A dictionary entry in BFTR event encoding:
    /// `AllocArr { t: 0, arr: 0, len: 8 }`.
    const DICT_EVENT: &[u8] = &[1, 0, 0, 8];

    /// Hand-assembles a container with one dictionary entry, the given
    /// rule bodies, top sequence, and claimed expansion size.
    fn container(rules: &[Vec<(u64, u64)>], top: &[(u64, u64)], total: u64) -> Vec<u8> {
        let mut b = COMPRESSED_MAGIC.to_vec();
        b.push(1); // version
        vu64(&mut b, 1); // dict_len
        b.extend_from_slice(DICT_EVENT);
        vu64(&mut b, rules.len() as u64);
        for r in rules {
            vu64(&mut b, r.len() as u64);
            for &(s, c) in r {
                vu64(&mut b, s);
                vu64(&mut b, c);
            }
        }
        vu64(&mut b, top.len() as u64);
        for &(s, c) in top {
            vu64(&mut b, s);
            vu64(&mut b, c);
        }
        vu64(&mut b, total);
        b
    }

    #[test]
    fn hand_assembled_container_is_valid() {
        // The baseline the corruption tests damage: rule 0 = (sym 0)^4,
        // top = rule 0 twice, 8 events total.
        let bytes = container(&[vec![(0, 4)]], &[(1, 2)], 8);
        let ct = read_compressed(&bytes).expect("valid container");
        assert_eq!(ct.total_events, 8);
        assert_eq!(decode_all(&decompress(&bytes).expect("expand")), Ok(8));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        // Unlike raw BFTR (where a cut between events reads as a shorter
        // trace), the container's trailing expansion count makes *every*
        // proper prefix invalid.
        let full = compress(&recorded_trace()).expect("compress");
        read_compressed(&full).expect("intact container parses");
        for len in 0..full.len() {
            assert!(
                read_compressed(&full[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
            assert!(decompress(&full[..len]).is_err());
        }
    }

    #[test]
    fn every_single_byte_mutation_parses_or_errors() {
        let full = compress(&recorded_trace()).expect("compress");
        for pos in 0..full.len() {
            for mask in [0x01u8, 0x80, 0xff] {
                let mut bad = full.clone();
                bad[pos] ^= mask;
                // Either outcome is fine; what must not happen is a
                // panic, a cycle, or an unbounded allocation.
                let _ = decompress(&bad);
            }
        }
    }

    #[test]
    fn self_and_forward_rule_refs_are_rejected() {
        // Rule 0 referencing itself (symbol 1 = first rule)…
        let bytes = container(&[vec![(1, 2)]], &[(0, 1)], 1);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::BadRuleRef { rule: 0, sym: 1 })
        );
        // …or a rule defined later (symbol 2 = second rule).
        let bytes = container(&[vec![(2, 2)], vec![(0, 1)]], &[(0, 1)], 1);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::BadRuleRef { rule: 0, sym: 2 })
        );
        // Top-level references are validated too (rule = u64::MAX marks
        // the top sequence).
        let bytes = container(&[], &[(7, 1)], 1);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::BadRuleRef {
                rule: u64::MAX,
                sym: 7
            })
        );
    }

    #[test]
    fn zero_repeat_counts_are_rejected() {
        let bytes = container(&[vec![(0, 0)]], &[(0, 1)], 1);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::BadCount { rule: 0 })
        );
        let bytes = container(&[], &[(0, 0)], 0);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::BadCount { rule: u64::MAX })
        );
    }

    #[test]
    fn oversized_expansion_claims_are_rejected() {
        // A huge count on one pair…
        let bytes = container(&[], &[(0, 1 << 41)], 1 << 41);
        assert!(matches!(
            read_compressed(&bytes),
            Err(TraceError::OversizedExpansion { .. })
        ));
        // …and a doubling rule chain that overflows multiplicatively
        // with tiny counts: rule i expands to 2^(i+1) events, so 41
        // rules blow past the 2^40 cap without any large varint.
        let mut rules: Vec<Vec<(u64, u64)>> = vec![vec![(0, 2)]];
        for i in 1..41u64 {
            rules.push(vec![(i, 2)]); // symbol i = rule i-1
        }
        let bytes = container(&rules, &[(41, 1)], 1 << 41);
        assert!(matches!(
            read_compressed(&bytes),
            Err(TraceError::OversizedExpansion { .. })
        ));
    }

    #[test]
    fn deep_rule_nesting_is_rejected() {
        // A 65-deep chain: rule i wraps rule i-1 once. Depth 65 exceeds
        // MAX_RULE_DEPTH = 64, caught at validation — expansion never
        // runs, so the recursion bound holds unconditionally.
        let mut rules: Vec<Vec<(u64, u64)>> = vec![vec![(0, 1)]];
        for i in 1..65u64 {
            rules.push(vec![(i, 1)]);
        }
        let bytes = container(&rules, &[(65, 1)], 1);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::RuleTooDeep { rule: 64 })
        );
    }

    #[test]
    fn wrong_expansion_total_is_rejected() {
        let bytes = container(&[vec![(0, 4)]], &[(1, 2)], 9);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::ExpansionMismatch {
                claimed: 9,
                actual: 8
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = container(&[vec![(0, 4)]], &[(1, 2)], 8);
        let end = bytes.len();
        bytes.push(0);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::TrailingBytes { offset: end })
        );
    }

    #[test]
    fn absurd_claimed_lengths_allocate_bounded() {
        // dict_len = u64::MAX, then nothing: the decoder must cap its
        // pre-allocation at the remaining input and fail typed.
        let mut bytes = COMPRESSED_MAGIC.to_vec();
        bytes.push(1);
        bytes.extend([0xff; 10]);
        bytes.push(0x01);
        assert!(read_compressed(&bytes).is_err());

        // Same for a rule's claimed pair count.
        let mut bytes = COMPRESSED_MAGIC.to_vec();
        bytes.push(1);
        vu64(&mut bytes, 1); // dict_len
        bytes.extend_from_slice(DICT_EVENT);
        vu64(&mut bytes, 1); // one rule
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // npairs = u64::MAX
        assert!(matches!(
            read_compressed(&bytes),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        assert_eq!(read_compressed(b"BFTX"), Err(TraceError::BadMagic));
        assert_eq!(read_compressed(b""), Err(TraceError::BadMagic));
        let mut bytes = COMPRESSED_MAGIC.to_vec();
        bytes.push(9);
        assert_eq!(
            read_compressed(&bytes),
            Err(TraceError::UnsupportedVersion(9))
        );
    }
}

#[test]
fn invalid_stride_is_a_typed_error() {
    // TAG_CHECK with one Range path whose step is 0 (zigzag 0).
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.push(1); // one path
    bytes.push(0); // kind = read
    bytes.push(1); // subtag = Range
    bytes.push(0); // arr id
    bytes.push(0); // lo = 0
    bytes.push(8); // hi = 4 (zigzag)
    bytes.push(0); // step = 0 — invalid
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::InvalidStride { step: 0, .. })
    ));
}
