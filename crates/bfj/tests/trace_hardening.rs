//! BFTR decode hardening: untrusted trace bytes must always produce a
//! typed [`TraceError`] or a clean end — never a panic, a hang, or an
//! attacker-chosen allocation.
//!
//! The recorded trace below covers every tag the writer can emit
//! (allocations, field/array accesses, checks with field sets *and*
//! strided ranges, volatiles, lock acquire/release, fork/join, thread
//! exit), then gets systematically damaged: truncated at every byte
//! boundary, mutated at every byte position, and spliced with
//! hand-crafted corrupt payloads (oversized LEB128 varints, unknown
//! tags, absurd claimed lengths).

use bigfoot_bfj::trace::{read_event, read_header};
use bigfoot_bfj::{parse_program, Interp, SchedPolicy, TraceError, TraceWriter, TRACE_MAGIC};

/// Records one run that exercises every event tag in the codec.
fn recorded_trace() -> Vec<u8> {
    let p = parse_program(
        "class C {
             field x; field y; volatile v;
             meth poke(l) {
                 acq(l);
                 this.x = 1;
                 this.v = 2;
                 w = this.v;
                 rel(l);
                 return w;
             }
         }
         main {
             c = new C; l = new C;
             a = new_array(8);
             check(w: c.x/y, r: a[0..8:2], r: a[3]);
             a[3] = 5;
             z = a[3];
             fork t = c.poke(l);
             join(t);
         }",
    )
    .expect("parse");
    let mut w = TraceWriter::new();
    Interp::new(&p, SchedPolicy::default())
        .run(&mut w)
        .expect("run");
    w.into_bytes()
}

/// Decodes every event in `bytes`, returning how many decoded before a
/// clean end (`Ok`) or a typed error (`Err`). Panics and hangs are the
/// failures this harness exists to rule out.
fn decode_all(bytes: &[u8]) -> Result<usize, TraceError> {
    let mut pos = read_header(bytes)?;
    let mut n = 0;
    while read_event(bytes, &mut pos)?.is_some() {
        n += 1;
    }
    Ok(n)
}

#[test]
fn intact_trace_decodes_completely() {
    let bytes = recorded_trace();
    let n = decode_all(&bytes).expect("intact trace");
    assert!(n > 10, "expected a rich trace, decoded only {n} events");
}

#[test]
fn every_truncation_errors_or_ends_cleanly() {
    let bytes = recorded_trace();
    for len in 0..bytes.len() {
        match decode_all(&bytes[..len]) {
            // A cut between events is indistinguishable from a shorter
            // trace — that is a clean end, not corruption.
            Ok(_) => {}
            Err(
                TraceError::BadMagic
                | TraceError::UnsupportedVersion(_)
                | TraceError::Truncated { .. }
                | TraceError::BadTag { .. }
                | TraceError::InvalidStride { .. },
            ) => {}
        }
    }
}

#[test]
fn every_single_byte_mutation_decodes_or_errors() {
    let bytes = recorded_trace();
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            // Either outcome is fine; what must not happen is a panic,
            // an unbounded loop, or an unbounded allocation.
            let _ = decode_all(&bad);
        }
    }
}

/// Mutated bytes that still decode must survive the codec round-trip:
/// re-encoding the decoded events yields a trace that decodes to the
/// same events again. This is the fuzz crate's round-trip oracle applied
/// to byte-level damage instead of generated programs.
#[test]
fn mutations_that_still_decode_round_trip() {
    use bigfoot_bfj::{Event, EventSink};
    let bytes = recorded_trace();
    let decode_events = |bytes: &[u8]| -> Result<Vec<Event>, TraceError> {
        let mut pos = read_header(bytes)?;
        let mut evs = Vec::new();
        while let Some(ev) = read_event(bytes, &mut pos)? {
            evs.push(ev);
        }
        Ok(evs)
    };
    let mut survivors = 0;
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        let Ok(evs) = decode_events(&bad) else {
            continue;
        };
        survivors += 1;
        let mut w = TraceWriter::new();
        for ev in &evs {
            w.event(ev);
        }
        let reencoded = w.into_bytes();
        assert_eq!(
            decode_events(&reencoded).expect("re-encoded trace must decode"),
            evs,
            "round-trip diverged after mutating byte {pos}"
        );
    }
    assert!(survivors > 0, "no mutation survived — test lost its teeth");
}

#[test]
fn oversized_leb128_shift_is_a_typed_error() {
    // TAG_ALLOC_ARR = 1: tid, arr, then a u64 length whose varint never
    // terminates — eleven continuation bytes push the shift past 63.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(1); // TAG_ALLOC_ARR
    bytes.push(0); // tid
    bytes.push(0); // arr id
    bytes.extend_from_slice(&[0xff; 11]);
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn unknown_tags_are_typed_errors() {
    for tag in [11u8, 0x42, 0xff] {
        let mut bytes = TRACE_MAGIC.to_vec();
        bytes.push(1); // version
        bytes.push(tag);
        assert!(
            matches!(decode_all(&bytes), Err(TraceError::BadTag { tag: t, .. }) if t == tag),
            "tag {tag} must be rejected"
        );
    }
}

#[test]
fn absurd_check_path_count_errors_without_matching_allocation() {
    // TAG_CHECK = 3 claiming u64::MAX paths, then nothing. The decoder
    // must cap its pre-allocation at the (tiny) remaining input and fail
    // with `Truncated` — not reserve entries for the claimed length.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));

    // Same for the field-index count inside one path: one claimed path,
    // a Fields target with u64::MAX indices, then nothing.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.push(1); // one path
    bytes.push(0); // kind = read
    bytes.push(0); // subtag = Fields
    bytes.push(7); // obj id
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    assert!(matches!(decode_all(b"NOPE"), Err(TraceError::BadMagic)));
    assert!(matches!(decode_all(b""), Err(TraceError::BadMagic)));
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(99);
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::UnsupportedVersion(99))
    ));
}

#[test]
fn invalid_stride_is_a_typed_error() {
    // TAG_CHECK with one Range path whose step is 0 (zigzag 0).
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // version
    bytes.push(3); // TAG_CHECK
    bytes.push(0); // tid
    bytes.push(1); // one path
    bytes.push(0); // kind = read
    bytes.push(1); // subtag = Range
    bytes.push(0); // arr id
    bytes.push(0); // lo = 0
    bytes.push(8); // hi = 4 (zigzag)
    bytes.push(0); // step = 0 — invalid
    assert!(matches!(
        decode_all(&bytes),
        Err(TraceError::InvalidStride { step: 0, .. })
    ));
}
