//! Property tests for the BFJ frontend and interpreter, driven by the
//! workload generator's random programs where whole programs are needed.

use bigfoot_bfj::*;
use proptest::prelude::*;

/// Strategy for pure expressions over a fixed variable pool.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        prop::bool::ANY.prop_map(Expr::Bool),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), binop()).prop_map(|(a, b, op)| Expr::Binop(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|a| Expr::Unop(Unop::Neg, Box::new(a))),
        ]
    })
}

fn binop() -> impl Strategy<Value = Binop> {
    prop_oneof![
        Just(Binop::Add),
        Just(Binop::Sub),
        Just(Binop::Mul),
        Just(Binop::Div),
        Just(Binop::Mod),
        Just(Binop::Lt),
        Just(Binop::Le),
        Just(Binop::Eq),
    ]
}

proptest! {
    /// pretty → parse normalizes (folding `-1` literals) and is then a
    /// fixed point: printing and reparsing is idempotent.
    #[test]
    fn expr_roundtrip(e in expr_strategy()) {
        let printed = pretty_expr(&e);
        let norm = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}`: {err}"));
        let printed2 = pretty_expr(&norm);
        let norm2 = parse_expr(&printed2)
            .unwrap_or_else(|err| panic!("reparse of `{printed2}`: {err}"));
        prop_assert_eq!(norm, norm2, "printed as `{}` then `{}`", printed, printed2);
    }

    /// pretty → parse is the identity on random whole programs.
    #[test]
    fn program_roundtrip(seed in 1u64..500) {
        let cfg = bigfoot_workloads_shim::config(seed);
        let src = bigfoot_workloads_shim::random_program(&cfg);
        let p1 = parse_program(&src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// The interpreter is deterministic: identical seeds give identical
    /// traces; and every per-thread event subsequence is schedule-
    /// independent.
    #[test]
    fn interpreter_determinism(seed in 1u64..200, switch in 1u32..6) {
        let cfg = bigfoot_workloads_shim::config(seed);
        let src = bigfoot_workloads_shim::random_program(&cfg);
        let p = parse_program(&src).unwrap();
        let run = |s: u64| {
            let mut sink = RecordingSink::default();
            Interp::new(&p, SchedPolicy::Random { seed: s, switch_inv: switch })
                .run(&mut sink)
                .unwrap();
            sink.events
        };
        let a = run(7);
        let b = run(7);
        prop_assert_eq!(&a, &b);
        let c = run(8);
        // Per-thread projections agree across schedules.
        for t in 0..4u32 {
            let proj = |evs: &[Event]| -> Vec<Event> {
                evs.iter().filter(|e| e.thread() == Tid(t)).cloned().collect()
            };
            prop_assert_eq!(proj(&a), proj(&c), "thread {} diverged across schedules", t);
        }
    }
}

/// Local shim around the workload generator so this crate does not
/// depend on `bigfoot-workloads` (which depends on us): a compact copy of
/// its seeded generator interface via source-level inclusion would be
/// heavy, so we generate a simpler program family here.
mod bigfoot_workloads_shim {
    pub struct Cfg {
        pub seed: u64,
    }

    pub fn config(seed: u64) -> Cfg {
        Cfg { seed }
    }

    /// A small deterministic program family: arithmetic, loops over
    /// arrays, a lock, and two workers.
    pub fn random_program(cfg: &Cfg) -> String {
        let mut x = cfg.seed | 1;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let n = 8 + (next() % 24) as i64;
        let reps = 1 + (next() % 4) as i64;
        let field_ops = (next() % 3) as i64 + 1;
        let mut body = String::new();
        for k in 0..field_ops {
            body.push_str(&format!(
                "                acq(l);\n                s.f{} = s.f{} + me;\n                rel(l);\n",
                k % 3,
                k % 3
            ));
        }
        format!(
            "class Shared {{ field f0; field f1; field f2; }}
             class Lk {{ }}
             class W {{
                 meth run(s, a, l, me) {{
                     for (r = 0; r < {reps}; r = r + 1) {{
                         acq(l);
                         for (i = 0; i < a.length; i = i + 1) {{
                             a[i] = a[i] + me;
                         }}
                         rel(l);
{body}
                     }}
                     return 0;
                 }}
             }}
             main {{
                 s = new Shared;
                 l = new Lk;
                 a = new_array({n});
                 w = new W;
                 fork t0 = w.run(s, a, l, 1);
                 fork t1 = w.run(s, a, l, 2);
                 fork t2 = w.run(s, a, l, 3);
                 join(t0);
                 join(t1);
                 join(t2);
             }}"
        )
    }
}
