//! Integration tests for the BFJ interpreter: sequential semantics,
//! threads, locks, events, and scheduler determinism.

use bigfoot_bfj::*;

fn run_main(src: &str) -> (Program, RecordingSink) {
    let p = parse_program(src).expect("parse");
    let mut sink = RecordingSink::default();
    Interp::new(&p, SchedPolicy::default())
        .run(&mut sink)
        .expect("run");
    (p, sink)
}

fn final_int(src: &str, var: &str) -> i64 {
    let p = parse_program(src).expect("parse");
    let mut interp = Interp::new(&p, SchedPolicy::default());
    interp.run(&mut NullSink).expect("run");
    match interp.final_env(Tid(0)).unwrap()[&Sym::intern(var)] {
        Value::Int(n) => n,
        other => panic!("{var} is {other}, expected int"),
    }
}

#[test]
fn arithmetic_and_control_flow() {
    assert_eq!(final_int("main { x = 2 * 3 + 4 % 3; }", "x"), 7);
    assert_eq!(
        final_int(
            "main { x = 0; if (1 < 2) { x = 10; } else { x = 20; } }",
            "x"
        ),
        10
    );
    assert_eq!(
        final_int(
            "main { s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i; } }",
            "s"
        ),
        10
    );
    assert_eq!(
        final_int("main { x = 1; while (x < 100) { x = x * 2; } }", "x"),
        128
    );
}

#[test]
fn objects_and_arrays() {
    let src = "
        class Point { field x; field y; }
        main {
            p = new Point;
            p.x = 3;
            p.y = p.x * 2;
            a = new_array(4);
            a[0] = p.y;
            a[p.x] = 9;
            r = a[0] + a[3];
        }";
    assert_eq!(final_int(src, "r"), 15);
}

#[test]
fn method_calls_and_recursion() {
    let src = "
        class Math {
            meth fact(n) {
                r = 1;
                if (n > 1) {
                    r = this.fact(n - 1);
                    r = r * n;
                }
                return r;
            }
        }
        main { m = new Math; f = m.fact(6); }";
    assert_eq!(final_int(src, "f"), 720);
}

#[test]
fn array_length() {
    assert_eq!(
        final_int("main { a = new_array(7); n = a.length; }", "n"),
        7
    );
}

#[test]
fn fork_join_produces_sync_events() {
    let src = "
        class Worker {
            field sum;
            meth run(n) {
                s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i; }
                this.sum = s;
                return 0;
            }
        }
        main {
            w = new Worker;
            fork t = w.run(10);
            join(t);
            result = w.sum;
        }";
    let (_, sink) = run_main(src);
    let forks = sink
        .events
        .iter()
        .filter(|e| matches!(e, Event::Fork { .. }))
        .count();
    let joins = sink
        .events
        .iter()
        .filter(|e| matches!(e, Event::Join { .. }))
        .count();
    assert_eq!(forks, 1);
    assert_eq!(joins, 1);
    // The fork must precede the child's first event; the join must follow
    // the child's exit.
    let fork_pos = sink
        .events
        .iter()
        .position(|e| matches!(e, Event::Fork { .. }))
        .unwrap();
    let child_first = sink
        .events
        .iter()
        .position(|e| e.thread() == Tid(1))
        .unwrap();
    assert!(fork_pos < child_first);
    assert_eq!(final_int(src, "result"), 45);
}

#[test]
fn locks_provide_mutual_exclusion() {
    // Two threads increment a shared counter 100 times each under a lock;
    // the result must always be 200 even with an adversarial scheduler.
    let src = "
        class Counter {
            field n;
            meth work(lock, reps) {
                for (i = 0; i < reps; i = i + 1) {
                    acq(lock);
                    this.n = this.n + 1;
                    rel(lock);
                }
                return 0;
            }
        }
        class Lock { }
        main {
            c = new Counter;
            l = new Lock;
            fork t1 = c.work(l, 100);
            fork t2 = c.work(l, 100);
            join(t1);
            join(t2);
            total = c.n;
        }";
    for seed in [1u64, 7, 42] {
        let p = parse_program(src).unwrap();
        let mut interp = Interp::new(
            &p,
            SchedPolicy::Random {
                seed,
                switch_inv: 2,
            },
        );
        interp.run(&mut NullSink).unwrap();
        assert_eq!(
            interp.final_env(Tid(0)).unwrap()[&Sym::intern("total")],
            Value::Int(200),
            "seed {seed}"
        );
    }
}

#[test]
fn acquire_release_events_are_paired() {
    let src = "
        class L { }
        main { l = new L; acq(l); rel(l); acq(l); acq(l); rel(l); rel(l); }";
    let (_, sink) = run_main(src);
    let acqs = sink
        .events
        .iter()
        .filter(|e| matches!(e, Event::Acquire { .. }))
        .count();
    let rels = sink
        .events
        .iter()
        .filter(|e| matches!(e, Event::Release { .. }))
        .count();
    assert_eq!(acqs, 3, "reentrant acquires are all reported");
    assert_eq!(rels, 3);
}

#[test]
fn release_without_hold_is_an_error() {
    let p = parse_program("class L { } main { l = new L; rel(l); }").unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .run(&mut NullSink)
        .unwrap_err();
    assert_eq!(err, RuntimeError::IllegalRelease);
}

#[test]
fn deadlock_is_detected() {
    let src = "
        class L { }
        class W {
            meth grab(a, b) {
                acq(a);
                skip; skip; skip; skip; skip; skip; skip; skip; skip; skip;
                skip; skip; skip; skip; skip; skip; skip; skip; skip; skip;
                acq(b);
                rel(b);
                rel(a);
                return 0;
            }
        }
        main {
            l1 = new L; l2 = new L;
            w = new W;
            fork t1 = w.grab(l1, l2);
            fork t2 = w.grab(l2, l1);
            join(t1);
            join(t2);
        }";
    let p = parse_program(src).unwrap();
    // A quantum small enough that both threads grab their first lock.
    let err = Interp::new(&p, SchedPolicy::RoundRobin { quantum: 5 })
        .run(&mut NullSink)
        .unwrap_err();
    assert_eq!(err, RuntimeError::Deadlock);
}

#[test]
fn out_of_bounds_is_an_error() {
    let p = parse_program("main { a = new_array(2); x = a[5]; }").unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .run(&mut NullSink)
        .unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::IndexOutOfBounds { index: 5, .. }
    ));
}

#[test]
fn division_by_zero_is_an_error() {
    let p = parse_program("main { z = 0; x = 1 / z; }").unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .run(&mut NullSink)
        .unwrap_err();
    assert_eq!(err, RuntimeError::DivisionByZero);
}

#[test]
fn check_statements_emit_check_events() {
    let src = "
        class P { field x; field y; }
        main {
            p = new P;
            a = new_array(10);
            check(w: p.x/y, r: a[0..10:2]);
        }";
    let (_, sink) = run_main(src);
    let checks: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Check { paths, .. } => Some(paths.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(checks.len(), 1);
    let paths = &checks[0];
    assert_eq!(paths.len(), 2);
    assert_eq!(paths[0].0, AccessKind::Write);
    match &paths[0].1 {
        CheckTarget::Fields(_, idxs) => assert_eq!(idxs, &vec![0, 1]),
        other => panic!("expected fields target, got {other:?}"),
    }
    match &paths[1].1 {
        CheckTarget::Range(_, r) => {
            assert_eq!((r.lo, r.hi, r.step), (0, 10, 2));
        }
        other => panic!("expected range target, got {other:?}"),
    }
}

#[test]
fn identical_seeds_give_identical_traces() {
    let src = "
        class W {
            field acc;
            meth run(n) {
                for (i = 0; i < n; i = i + 1) { this.acc = this.acc + i; }
                return 0;
            }
        }
        main {
            w1 = new W; w2 = new W;
            fork t1 = w1.run(20);
            fork t2 = w2.run(20);
            join(t1); join(t2);
        }";
    let p = parse_program(src).unwrap();
    let run_with = |seed| {
        let mut sink = RecordingSink::default();
        Interp::new(
            &p,
            SchedPolicy::Random {
                seed,
                switch_inv: 3,
            },
        )
        .run(&mut sink)
        .unwrap();
        sink.events
    };
    assert_eq!(run_with(99), run_with(99));
    // Different seeds typically interleave differently (not asserted: they
    // may coincide, but the traces must still be permutations per thread).
    let a = run_with(1);
    let b = run_with(2);
    let per_thread = |evs: &[Event], t: Tid| -> Vec<Event> {
        evs.iter().filter(|e| e.thread() == t).cloned().collect()
    };
    for t in [Tid(0), Tid(1), Tid(2)] {
        assert_eq!(per_thread(&a, t), per_thread(&b, t));
    }
}

#[test]
fn racy_program_runs_to_completion() {
    // Data races are a detector concern, not an interpreter error.
    let src = "
        class C { field x; meth poke(v) { this.x = v; return 0; } }
        main {
            c = new C;
            fork t1 = c.poke(1);
            fork t2 = c.poke(2);
            join(t1); join(t2);
            r = c.x;
        }";
    let r = final_int(src, "r");
    assert!(r == 1 || r == 2);
}

#[test]
fn heap_cells_accounting() {
    let src = "class P { field x; field y; field z; } main { p = new P; a = new_array(10); }";
    let p = parse_program(src).unwrap();
    let mut interp = Interp::new(&p, SchedPolicy::default());
    let outcome = interp.run(&mut NullSink).unwrap();
    assert_eq!(outcome.heap_cells, 13);
}

#[test]
fn step_limit_guards_against_divergence() {
    let p = parse_program("main { while (true) { skip; } }").unwrap();
    let err = Interp::new(&p, SchedPolicy::default())
        .with_max_steps(10_000)
        .run(&mut NullSink)
        .unwrap_err();
    assert_eq!(err, RuntimeError::StepLimitExceeded(10_000));
}
