//! Property tests for the compilation tier's arithmetic: [`CompiledVm`]
//! must agree with [`Interp`] on every expression over the *full*
//! `Binop`/`Unop` space — wrapping add/sub/mul/neg, `wrapping_div`/
//! `wrapping_rem` (so `i64::MIN / -1` wraps instead of trapping), the
//! divide-by-zero error, comparisons, short-circuit `&&`/`||`, and the
//! type errors mixed-type operands raise. Agreement covers the run
//! result (value *or* error), the event stream, and the final
//! environment.

use bigfoot_bfj::*;
use proptest::prelude::*;

/// Integer edge cases the generator must always be able to reach; plain
/// small ints come from a separate range strategy.
const EDGES: [i64; 8] = [i64::MIN, i64::MIN + 1, -1, 0, 1, 2, i64::MAX - 1, i64::MAX];

/// Uniform draw from [`EDGES`] (the offline proptest shim has no
/// `prop::sample`, so index through a range strategy instead).
fn edge_int() -> impl Strategy<Value = i64> {
    (0usize..EDGES.len()).prop_map(|i| EDGES[i])
}

fn any_binop() -> impl Strategy<Value = Binop> {
    prop_oneof![
        Just(Binop::Add),
        Just(Binop::Sub),
        Just(Binop::Mul),
        Just(Binop::Div),
        Just(Binop::Mod),
        Just(Binop::Eq),
        Just(Binop::Ne),
        Just(Binop::Lt),
        Just(Binop::Le),
        Just(Binop::Gt),
        Just(Binop::Ge),
        Just(Binop::And),
        Just(Binop::Or),
    ]
}

fn any_unop() -> impl Strategy<Value = Unop> {
    prop_oneof![Just(Unop::Neg), Just(Unop::Not)]
}

/// Expressions over two int variables, one bool variable, and literals —
/// including ill-typed mixes, whose runtime type errors both engines
/// must raise identically.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        edge_int().prop_map(Expr::Int),
        (-100i64..100).prop_map(Expr::Int),
        prop::bool::ANY.prop_map(Expr::Bool),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (any_binop(), inner.clone(), inner.clone()).prop_map(|(op, x, y)| Expr::Binop(
                op,
                Box::new(x),
                Box::new(y)
            )),
            (any_unop(), inner.clone()).prop_map(|(op, x)| Expr::Unop(op, Box::new(x))),
        ]
    })
}

/// `main { a = <a>; b = <b>; c = <flag>; r = <expr>; }` built straight
/// from the AST, so `i64::MIN` literals need no surface-syntax spelling.
fn program_for(expr: &Expr, a: i64, b: i64, flag: bool) -> Program {
    let assign = |x: &str, e: Expr| {
        Stmt::new(StmtKind::Assign {
            x: Sym::intern(x),
            e,
        })
    };
    let mut p = Program {
        classes: vec![],
        main: Block {
            stmts: vec![
                assign("a", Expr::Int(a)),
                assign("b", Expr::Int(b)),
                assign("c", Expr::Bool(flag)),
                assign("r", expr.clone()),
            ],
        },
    };
    p.renumber();
    p
}

/// Runs `p` on both engines and asserts outcome, events, and final
/// environment all agree. Returns the interpreter's result for callers
/// that want to pin a specific value or error.
fn assert_engines_agree(p: &Program) -> Result<RunOutcome, RuntimeError> {
    let mut ri = RecordingSink::default();
    let mut interp = Interp::new(p, SchedPolicy::default());
    let ei = interp.run(&mut ri);
    let cp = compile(p);
    let mut rc = RecordingSink::default();
    let mut vm = CompiledVm::new(&cp, SchedPolicy::default());
    let ec = vm.run(&mut rc);
    assert_eq!(ei, ec, "run result diverges for {}", pretty(p));
    assert_eq!(ri.events, rc.events, "events diverge for {}", pretty(p));
    if ei.is_ok() {
        assert_eq!(
            interp.final_env(Tid(0)),
            vm.final_env(Tid(0)),
            "final env diverges for {}",
            pretty(p)
        );
    }
    ei
}

proptest! {
    /// Random expressions over the full operator space with edge-value
    /// operand bindings: both engines agree on value, error, and env.
    #[test]
    fn compiled_arithmetic_matches_interpreter(
        expr in expr_strategy(),
        a in prop_oneof![edge_int(), -100i64..100],
        b in prop_oneof![edge_int(), -100i64..100],
        flag in prop::bool::ANY,
    ) {
        let _ = assert_engines_agree(&program_for(&expr, a, b, flag));
    }
}

#[test]
fn every_binop_agrees_on_every_edge_pair() {
    // Exhaustive, not sampled: the 11 int-operand binops × 8×8 edge
    // operand pairs (704 programs), so `i64::MIN / -1`, `% -1`,
    // divide-by-zero, and every wrapping overflow corner is pinned on
    // every `cargo test`. `&&`/`||` take bool operands and are covered
    // by `unops_and_logic_agree_on_edges` below.
    let ops = [
        Binop::Add,
        Binop::Sub,
        Binop::Mul,
        Binop::Div,
        Binop::Mod,
        Binop::Eq,
        Binop::Ne,
        Binop::Lt,
        Binop::Le,
        Binop::Gt,
        Binop::Ge,
    ];
    for op in ops {
        for x in EDGES {
            for y in EDGES {
                let expr = Expr::Binop(op, Box::new(Expr::var("a")), Box::new(Expr::var("b")));
                let _ = assert_engines_agree(&program_for(&expr, x, y, false));
            }
        }
    }
}

#[test]
fn unops_and_logic_agree_on_edges() {
    for x in EDGES {
        let neg = Expr::Unop(Unop::Neg, Box::new(Expr::var("a")));
        let _ = assert_engines_agree(&program_for(&neg, x, 0, false));
    }
    for flag in [false, true] {
        let not = Expr::Unop(Unop::Not, Box::new(Expr::var("c")));
        let _ = assert_engines_agree(&program_for(&not, 0, 0, flag));
        for op in [Binop::And, Binop::Or] {
            // Short-circuit: the right operand divides by zero, so the
            // result depends on whether evaluation stops at `c`.
            let rhs = Expr::Binop(
                Binop::Eq,
                Box::new(Expr::Binop(
                    Binop::Div,
                    Box::new(Expr::Int(1)),
                    Box::new(Expr::Int(0)),
                )),
                Box::new(Expr::Int(0)),
            );
            let e = Expr::Binop(op, Box::new(Expr::var("c")), Box::new(rhs));
            let _ = assert_engines_agree(&program_for(&e, 0, 0, flag));
        }
    }
}

#[test]
fn min_over_minus_one_wraps_identically() {
    // The one pair that traps in native Rust division: both engines must
    // produce the wrapped value, not a panic and not an error.
    let div = Expr::Binop(
        Binop::Div,
        Box::new(Expr::var("a")),
        Box::new(Expr::var("b")),
    );
    let out = assert_engines_agree(&program_for(&div, i64::MIN, -1, false));
    assert!(out.is_ok(), "MIN / -1 must wrap, not error: {out:?}");
    let rem = Expr::Binop(
        Binop::Mod,
        Box::new(Expr::var("a")),
        Box::new(Expr::var("b")),
    );
    let out = assert_engines_agree(&program_for(&rem, i64::MIN, -1, false));
    assert!(out.is_ok(), "MIN % -1 must wrap, not error: {out:?}");
}
