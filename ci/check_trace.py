#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the flight recorder.

Usage: check_trace.py TRACE.json [--min-threads N] [--require-counter NAME]
                                 [--require-thread NAME]

Checks (all must pass):
  * the file is well-formed JSON with a `traceEvents` array;
  * every event carries the required keys for its phase (`ph`);
  * at least N `thread_name` metadata tracks exist (default 2), with
    distinct tids — one per recorded thread;
  * per tid, B/E events are balanced and stack-disciplined (depth never
    goes negative, ends at zero) — this covers every worker track in a
    multi-ring sharded run, not just the producer/consumer pair;
  * timestamps are non-negative and B/E pairs are non-inverted;
  * each `--require-counter NAME` appears as a C event with a numeric
    `args.value`;
  * each `--require-thread NAME` appears as a `thread_name` metadata
    track (e.g. `--require-thread "detect worker 0"` pins the sharded
    pipeline's per-worker tracks).

Exit code 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-threads", type=int, default=2)
    ap.add_argument("--require-counter", action="append", default=[])
    ap.add_argument("--require-thread", action="append", default=[])
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing `traceEvents` array")
    if not events:
        fail("trace is empty")

    thread_names = {}  # tid -> name
    depth = {}  # tid -> [depth, open-span stack of (name, ts)]
    counters_seen = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph is None:
            fail(f"event #{i} has no `ph`")
        if ph == "M":
            if ev.get("name") == "thread_name":
                tid = ev.get("tid")
                name = (ev.get("args") or {}).get("name")
                if tid is None or not name:
                    fail(f"metadata event #{i} lacks tid or args.name")
                thread_names[tid] = name
            continue
        # Non-metadata events need a tid and a non-negative timestamp.
        tid, ts = ev.get("tid"), ev.get("ts")
        if tid is None or ts is None:
            fail(f"{ph} event #{i} lacks tid or ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{ph} event #{i} has bad ts {ts!r}")
        if ph == "B":
            depth.setdefault(tid, []).append((ev.get("name"), ts))
        elif ph == "E":
            stack = depth.setdefault(tid, [])
            if not stack:
                fail(f"tid {tid}: E at ts {ts} with no open span (event #{i})")
            _, begin_ts = stack.pop()
            if ts < begin_ts:
                fail(f"tid {tid}: span ends at {ts} before it begins at {begin_ts}")
        elif ph == "C":
            value = (ev.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"counter event #{i} ({ev.get('name')}) has no numeric args.value")
            counters_seen.add(ev.get("name"))
        elif ph == "i":
            pass
        else:
            fail(f"event #{i} has unexpected phase {ph!r}")

    for tid, stack in depth.items():
        if stack:
            names = ", ".join(n for n, _ in stack)
            fail(f"tid {tid}: {len(stack)} span(s) never closed: {names}")

    if len(thread_names) < args.min_threads:
        fail(
            f"only {len(thread_names)} thread track(s) "
            f"({sorted(thread_names.values())}), need >= {args.min_threads}"
        )

    for name in args.require_counter:
        if name not in counters_seen:
            fail(f"required counter track `{name}` absent (saw {sorted(counters_seen)})")

    for name in args.require_thread:
        if name not in thread_names.values():
            fail(
                f"required thread track `{name}` absent "
                f"(saw {sorted(thread_names.values())})"
            )

    spans = sum(1 for ev in events if ev.get("ph") == "B")
    print(
        f"check_trace: OK: {len(events)} events, {len(thread_names)} thread tracks "
        f"({', '.join(sorted(thread_names.values()))}), {spans} balanced spans, "
        f"{len(counters_seen)} counter track(s)"
    )


if __name__ == "__main__":
    main()
