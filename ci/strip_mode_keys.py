#!/usr/bin/env python3
"""Compare two bfc/repro JSON reports, ignoring mode-describing keys.

Usage: strip_mode_keys.py <a.json> <b.json> [label]

The pipeline-smoke, compiled-smoke, and compressed-smoke CI jobs run
the same program under different execution modes (serial vs the batched
ring, the tree-walking interpreter vs the bytecode tier, raw vs
grammar-compressed trace replay) and require the reports to be
identical except for the keys that merely describe *how* the run
executed (`pipeline`, `replay_workers`, `detect_workers`, `compiled`,
`compressed`, `trace_bytes`, `memo`, and the input `file` path) —
races, counters, and space accounting must match byte for byte.
"""

import json
import sys

MODE_KEYS = {
    "pipeline",
    "replay_workers",
    "detect_workers",
    "compiled",
    "compressed",
    "trace_bytes",
    "memo",
    "file",
}


def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items() if k not in MODE_KEYS}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


def main():
    a_path, b_path = sys.argv[1], sys.argv[2]
    label = sys.argv[3] if len(sys.argv) > 3 else f"{a_path} vs {b_path}"
    with open(a_path) as f:
        a = strip(json.load(f))
    with open(b_path) as f:
        b = strip(json.load(f))
    if a != b:
        print(f"{label}: verdicts diverge:")
        print(json.dumps(a, indent=2, sort_keys=True))
        print("--- vs ---")
        print(json.dumps(b, indent=2, sort_keys=True))
        sys.exit(1)
    print(f"{label}: verdicts identical")


if __name__ == "__main__":
    main()
